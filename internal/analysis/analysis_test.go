package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// markerAnalyzer reports every call to a function named mark — a toy
// check that makes suppression behavior directly observable.
func markerAnalyzer(scope func(string) bool) *Analyzer {
	return &Analyzer{
		Name:  "marker",
		Doc:   "reports every call to a function named mark",
		Scope: scope,
		Run: func(p *Pass) {
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
						p.Reportf(call.Pos(), "call to mark")
					}
					return true
				})
			}
		},
	}
}

func loadIgnores(t *testing.T) (*Loader, *Package) {
	t.Helper()
	l, err := NewLoader("testdata/ignores")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/ignores")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	return l, pkg
}

func TestLoaderModuleDiscovery(t *testing.T) {
	l, pkg := loadIgnores(t)
	if l.ModulePath != "repro" {
		t.Errorf("ModulePath = %q, want %q", l.ModulePath, "repro")
	}
	if _, err := os.Stat(filepath.Join(l.ModuleDir, "go.mod")); err != nil {
		t.Errorf("ModuleDir %s has no go.mod: %v", l.ModuleDir, err)
	}
	if want := "repro/internal/analysis/testdata/ignores"; pkg.Path != want {
		t.Errorf("pkg.Path = %q, want %q", pkg.Path, want)
	}
}

func TestExpandSkipsTestdata(t *testing.T) {
	l, _ := loadIgnores(t)
	dirs, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(dirs) == 0 {
		t.Fatal("Expand(./...) matched no packages")
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand(./...) matched testdata directory %s", d)
		}
	}
	// A directory pattern and the equivalent import path resolve to the
	// same package directory and deduplicate.
	dirs, err = l.Expand([]string{"internal/analysis", "repro/internal/analysis"})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(dirs) != 1 {
		t.Errorf("Expand dir+importpath = %v, want one deduplicated entry", dirs)
	}
}

// fixtureLines extracts 1-based line numbers of the ignores fixture
// matching pred, so the test tracks the fixture without hard-coded
// line numbers.
func fixtureLines(t *testing.T, pred func(line string) bool) map[int]bool {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "ignores", "ignores.go"))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	out := make(map[int]bool)
	for i, line := range strings.Split(string(data), "\n") {
		if pred(line) {
			out[i+1] = true
		}
	}
	return out
}

func TestIgnoreDirectives(t *testing.T) {
	l, pkg := loadIgnores(t)
	ds := l.RunPackage(pkg, []*Analyzer{markerAnalyzer(nil)}, true)
	sortDiagnostics(ds)

	wantMarker := fixtureLines(t, func(s string) bool { return strings.Contains(s, "// hit") })
	// "ignore" findings come from malformed directives (exact bare text)
	// and from stale ones: the unknown-check directive, the out-of-range
	// directive that covered nothing, and the reserved-check directive.
	wantIgnore := fixtureLines(t, func(s string) bool {
		trimmed := strings.TrimSpace(s)
		return trimmed == "//tmedbvet:ignore" || trimmed == "//tmedbvet:ignore marker" ||
			strings.Contains(s, "othercheck") || strings.Contains(s, "out of range") ||
			strings.HasPrefix(trimmed, "//tmedbvet:ignore ignore ")
	})

	gotMarker := make(map[int]bool)
	gotIgnore := make(map[int]bool)
	for _, d := range ds {
		if !strings.HasSuffix(d.Pos.Filename, "testdata/ignores/ignores.go") {
			t.Errorf("diagnostic in unexpected file %s", d.Pos.Filename)
			continue
		}
		switch d.Check {
		case "marker":
			gotMarker[d.Pos.Line] = true
		case "ignore":
			gotIgnore[d.Pos.Line] = true
		default:
			t.Errorf("unexpected check %q at line %d", d.Check, d.Pos.Line)
		}
	}
	if !sameLineSet(gotMarker, wantMarker) {
		t.Errorf("surviving marker lines = %v, want %v", lineList(gotMarker), lineList(wantMarker))
	}
	if !sameLineSet(gotIgnore, wantIgnore) {
		t.Errorf("malformed-directive lines = %v, want %v", lineList(gotIgnore), lineList(wantIgnore))
	}
}

func TestMultiLineStatementSuppression(t *testing.T) {
	l, err := NewLoader("testdata/multiline")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/multiline")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	ds := l.RunPackage(pkg, []*Analyzer{markerAnalyzer(nil)}, true)

	var markerLines, ignoreLines []int
	for _, d := range ds {
		switch d.Check {
		case "marker":
			markerLines = append(markerLines, d.Pos.Line)
		case "ignore":
			ignoreLines = append(ignoreLines, d.Pos.Line)
		}
	}
	// The two mark calls on the wrapped statement's continuation lines
	// are covered by the directive above the statement; only the one
	// inside the if block survives.
	data, err := os.ReadFile(filepath.Join("testdata", "multiline", "multiline.go"))
	if err != nil {
		t.Fatal(err)
	}
	var wantHit, wantStale int
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "// hit") {
			wantHit = i + 1
		}
		if strings.Contains(line, "must not blanket") {
			wantStale = i + 1
		}
	}
	if len(markerLines) != 1 || markerLines[0] != wantHit {
		t.Errorf("marker lines = %v, want [%d]", markerLines, wantHit)
	}
	// The block directive silenced nothing, so it is reported stale.
	if len(ignoreLines) != 1 || ignoreLines[0] != wantStale {
		t.Errorf("ignore lines = %v, want [%d]", ignoreLines, wantStale)
	}
}

func TestGeneratedFileExemptFromStale(t *testing.T) {
	l, err := NewLoader("testdata/generated")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir("testdata/generated")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	ds := l.RunPackage(pkg, []*Analyzer{markerAnalyzer(nil)}, true)

	for _, d := range ds {
		if d.Check == "ignore" {
			t.Errorf("stale suppression reported in generated file at line %d: %s", d.Pos.Line, d.Message)
		}
	}
	// The used directive still suppresses; only the unsuppressed call
	// survives.
	var markerLines []int
	for _, d := range ds {
		if d.Check == "marker" {
			markerLines = append(markerLines, d.Pos.Line)
		}
	}
	if len(markerLines) != 1 {
		t.Errorf("marker lines in generated file = %v, want exactly the uncovered call", markerLines)
	}
}

func TestStaleJudgmentHonorsScope(t *testing.T) {
	// A directive naming an analyzer whose scope excludes the package is
	// not stale: the check never ran there, so "no finding" proves
	// nothing. The unknown-check and reserved-check directives are stale
	// regardless of scope.
	l, pkg := loadIgnores(t)
	outOfScope := markerAnalyzer(func(string) bool { return false })
	var staleMarkerDirectives int
	for _, d := range l.RunPackage(pkg, []*Analyzer{outOfScope}, true) {
		if d.Check == "ignore" && strings.Contains(d.Message, "no marker finding") {
			staleMarkerDirectives++
		}
	}
	if staleMarkerDirectives != 0 {
		t.Errorf("%d marker directives judged stale though marker's scope excludes the package", staleMarkerDirectives)
	}
}

func TestScopeFiltering(t *testing.T) {
	l, pkg := loadIgnores(t)
	outOfScope := markerAnalyzer(func(path string) bool { return false })
	for _, d := range l.RunPackage(pkg, []*Analyzer{outOfScope}, true) {
		if d.Check == "marker" {
			t.Errorf("out-of-scope analyzer still reported at line %d", d.Pos.Line)
		}
	}
	// The fixture harness's scope bypass runs it anyway.
	found := false
	for _, d := range l.RunPackage(pkg, []*Analyzer{outOfScope}, false) {
		if d.Check == "marker" {
			found = true
		}
	}
	if !found {
		t.Error("scope bypass reported no marker diagnostics")
	}
}

func TestWriteReports(t *testing.T) {
	ds := []Diagnostic{
		{Pos: token.Position{Filename: "internal/core/core.go", Line: 3, Column: 7},
			Check: "floateq", Message: `exact float == on computed values (a == b)`},
		{Pos: token.Position{Filename: "internal/sim/sim.go", Line: 11, Column: 2},
			Check: "detrange", Message: "map iteration order reaches planner output (append to out)"},
	}

	var text strings.Builder
	if err := WriteText(&text, ds); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	wantText := "internal/core/core.go:3:7: [floateq] exact float == on computed values (a == b)\n" +
		"internal/sim/sim.go:11:2: [detrange] map iteration order reaches planner output (append to out)\n"
	if text.String() != wantText {
		t.Errorf("WriteText:\n%s\nwant:\n%s", text.String(), wantText)
	}

	var jsonOut strings.Builder
	if err := WriteJSON(&jsonOut, &Result{Findings: ds, Suppressed: 4}); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	wantJSON := `{
  "findings": [
    {
      "file": "internal/core/core.go",
      "line": 3,
      "col": 7,
      "check": "floateq",
      "message": "exact float == on computed values (a == b)"
    },
    {
      "file": "internal/sim/sim.go",
      "line": 11,
      "col": 2,
      "check": "detrange",
      "message": "map iteration order reaches planner output (append to out)"
    }
  ],
  "summary": {
    "findings": 2,
    "suppressed": 4
  }
}
`
	if jsonOut.String() != wantJSON {
		t.Errorf("WriteJSON:\n%s\nwant:\n%s", jsonOut.String(), wantJSON)
	}

	var empty strings.Builder
	if err := WriteJSON(&empty, &Result{}); err != nil {
		t.Fatalf("WriteJSON(empty): %v", err)
	}
	wantEmpty := `{
  "findings": [],
  "summary": {
    "findings": 0,
    "suppressed": 0
  }
}
`
	if empty.String() != wantEmpty {
		t.Errorf("WriteJSON(empty) = %q, want %q", empty.String(), wantEmpty)
	}
}

func TestWriteTimings(t *testing.T) {
	res := &Result{
		LoadElapsed: 1234567 * time.Nanosecond,
		Timings: []AnalyzerTiming{
			{Name: "marker", Elapsed: 42 * time.Microsecond},
			{Name: "slowcheck", Elapsed: 2*time.Second + 5*time.Millisecond},
		},
	}
	var out strings.Builder
	if err := WriteTimings(&out, res); err != nil {
		t.Fatalf("WriteTimings: %v", err)
	}
	want := "load (parse+typecheck)       1.23ms\n" +
		"marker                         42µs\n" +
		"slowcheck                     2.01s\n"
	if out.String() != want {
		t.Errorf("WriteTimings:\n%q\nwant:\n%q", out.String(), want)
	}
}

func TestDedupDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{Pos: token.Position{Filename: "a.go", Line: 1, Column: 1}, Check: "x", Message: "first"},
		{Pos: token.Position{Filename: "a.go", Line: 1, Column: 1}, Check: "x", Message: "second copy of the same (file, line, col, check)"},
		{Pos: token.Position{Filename: "a.go", Line: 1, Column: 1}, Check: "y", Message: "different check survives"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 1}, Check: "x", Message: "different line survives"},
	}
	sortDiagnostics(ds)
	got := dedupDiagnostics(ds)
	if len(got) != 3 {
		t.Fatalf("dedup kept %d, want 3: %v", len(got), got)
	}
	if got[0].Message != "first" {
		t.Errorf("dedup kept %q, want the message-smallest survivor %q", got[0].Message, "first")
	}
}

func TestSortDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{Pos: token.Position{Filename: "b.go", Line: 1, Column: 1}, Check: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 9, Column: 1}, Check: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 5}, Check: "z"},
		{Pos: token.Position{Filename: "a.go", Line: 2, Column: 5}, Check: "a"},
	}
	sortDiagnostics(ds)
	if !sort.SliceIsSorted(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	}) {
		t.Errorf("sortDiagnostics order wrong: %v", ds)
	}
	if ds[0].Pos.Filename != "a.go" || ds[0].Pos.Line != 2 || ds[0].Check != "a" {
		t.Errorf("first diagnostic = %+v", ds[0])
	}
}

func sameLineSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func lineList(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
