package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// TB is the subset of *testing.T the fixture harness needs, kept as an
// interface so importing this package does not pull "testing" into
// non-test binaries (cmd/tmedbvet links against this package).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// want is one expectation comment: a diagnostic matching rx must be
// reported at (file, line).
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// RunFixture loads the golden-fixture package in dir, runs the
// analyzers over it with Scope bypassed, and diffs the reported
// diagnostics against the fixture's inline expectations:
//
//	code under test // want "regexp" "second regexp"
//
// Each quoted regexp must match exactly one diagnostic reported on its
// line, against the string "<check>: <message>" (so fixtures shared by
// several analyzers can pin which check fires). Unmatched expectations
// and unexpected diagnostics are both test failures. Suppression
// comments are honored, so fixtures can also pin the ignore syntax.
func RunFixture(t TB, dir string, analyzers ...*Analyzer) {
	t.Helper()
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("fixture loader: %v", err)
	}
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("fixture load %s: %v", dir, err)
	}
	ds := l.RunPackage(pkg, analyzers, false)
	sortDiagnostics(ds)

	wants, err := collectWants(l, pkg)
	if err != nil {
		t.Fatalf("fixture expectations: %v", err)
	}

	for _, d := range ds {
		text := d.Check + ": " + d.Message
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.rx.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// wantRE extracts the quoted patterns of a want comment. Patterns use
// Go string-literal syntax, so \" escapes work.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants parses every `// want "..."` comment in the package.
func collectWants(l *Loader, pkg *Package) ([]*want, error) {
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "want ")
				if !strings.HasPrefix(c.Text, "//") || idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(c.Text[idx:], -1) {
					raw, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					rx, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					out = append(out, &want{
						file: l.relativize(pos.Filename),
						line: pos.Line,
						rx:   rx,
						raw:  raw,
					})
				}
			}
		}
	}
	return out, nil
}
