// Package ignores exercises the //tmedbvet:ignore directive parser and
// the suppression matcher. The driver test pairs it with a toy
// analyzer that reports every call to mark; lines carrying the
// trailing hit-marker tag are where a marker diagnostic must survive
// suppression filtering, and
// malformed directive lines (identified by exact text) must each yield
// one diagnostic of the reserved "ignore" check.
package ignores

func mark() int { return 1 }

func unsuppressed() int {
	return mark() // hit
}

func sameLine() int {
	return mark() //tmedbvet:ignore marker same-line directives cover their own line
}

func lineAbove() int {
	//tmedbvet:ignore marker directives also cover the line below
	return mark()
}

func wrongCheck() int {
	//tmedbvet:ignore othercheck directive names a different check, so marker still fires
	return mark() // hit
}

func tooFar() int {
	//tmedbvet:ignore marker two lines up is out of range

	return mark() // hit
}

func missingReason() int {
	//tmedbvet:ignore marker
	return mark() // hit
}

func missingCheck() int {
	//tmedbvet:ignore
	return mark() // hit
}

func ignoreCheckIsUnsuppressable() int {
	//tmedbvet:ignore ignore the reserved check cannot be silenced, so the next line still reports
	//tmedbvet:ignore
	return mark() // hit
}
