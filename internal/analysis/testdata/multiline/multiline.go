// Package multiline exercises the multi-line statement anchor: a
// directive above a statement that spans several lines must cover
// findings on every line of the statement, not just the first.
package multiline

func mark() int { return 1 }

func use(...int) {}

// wrapped has its mark calls on continuation lines of one statement;
// the directive above the statement covers all of them.
func wrapped() {
	//tmedbvet:ignore marker directive above a wrapped call covers its continuation lines
	use(
		mark(),
		mark(),
	)
}

// blockNotBlanketed shows the anchor is statement-scoped, not
// block-scoped: a directive above an if statement does not silence
// findings inside the block's own statements.
func blockNotBlanketed() {
	//tmedbvet:ignore marker a directive above a block statement must not blanket the body
	if true {
		use(mark()) // hit
	}
}
