// Package analysis is the repo's static-analysis driver: a small,
// stdlib-only (go/ast, go/parser, go/types, go/token) framework that
// loads this module's packages, runs repo-specific analyzers over them,
// and reports diagnostics with file:line positions, a machine-readable
// JSON mode, and an inline suppression syntax.
//
// The analyzers (see internal/analysis/checks) encode the contracts the
// solver established in PRs 1–4 — byte-identical schedules under any
// worker count, checkpoint-threaded cancellation with typed errors,
// TimeTol-gated time comparisons, and paired obs phase spans — so that
// violations are caught at analysis time, on every file, before any
// test has to hit the offending path.
//
// Suppressions: a finding is silenced by an inline comment
//
//	//tmedbvet:ignore <check> <reason>
//
// on the same line as the finding or on the line directly above it.
// The reason is mandatory; an ignore comment without one is itself a
// diagnostic (check "ignore") that cannot be suppressed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Diagnostic is one finding: a position, the analyzer (check) that
// produced it, and a human-readable message.
type Diagnostic struct {
	// Pos is the resolved source position. File is relative to the
	// module root when the finding is inside the module.
	Pos token.Position
	// Check is the reporting analyzer's name.
	Check string
	// Message describes the violation and the sanctioned alternative.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzer is one named check. Per-package analyzers set Run, which
// inspects a single type-checked package; module analyzers set
// RunModule, which sees every analyzed package at once plus the
// intra-module call graph (reachability-based checks like hotalloc
// need cross-package callee resolution). Exactly one of Run/RunModule
// should be set.
type Analyzer struct {
	// Name is the check identifier used in output and in
	// //tmedbvet:ignore comments.
	Name string
	// Doc is a one-paragraph description of the enforced contract.
	Doc string
	// Scope reports whether the analyzer applies to a package import
	// path. A nil Scope applies everywhere. The fixture harness
	// bypasses Scope so testdata packages exercise Run directly. For
	// module analyzers Scope filters ModulePass.Packages.
	Scope func(pkgPath string) bool
	// Run inspects pass.Pkg and calls pass.Report for each finding.
	Run func(pass *Pass)
	// RunModule inspects every package of a module-wide pass.
	RunModule func(pass *ModulePass)
}

// Pass is one (analyzer, package) unit of work handed to Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Fset returns the file set all of the package's positions resolve
// against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypeOf returns the type of an expression, or nil when the checker
// recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (uses before defs),
// or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.ObjectOf(id); obj != nil {
		return obj
	}
	return nil
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass is one module-wide unit of work handed to
// Analyzer.RunModule: every analyzed package at once, plus the lazily
// built intra-module call graph over them.
type ModulePass struct {
	Analyzer *Analyzer
	// Packages are the in-scope packages the analyzer should report on,
	// sorted by import path.
	Packages []*Package
	// All additionally holds every module package the loader pulled in
	// as a dependency of Packages; the call graph and cross-package
	// object lookups span these too.
	All []*Package

	fset   *token.FileSet
	report func(Diagnostic)
	// graphFn memoizes the call graph across every module analyzer of
	// one driver run; the driver injects it.
	graphFn func() *CallGraph
}

// Fset returns the file set all positions resolve against.
func (p *ModulePass) Fset() *token.FileSet { return p.fset }

// Graph returns the intra-module call graph over every loaded package,
// built on first use and shared by the run's module analyzers.
func (p *ModulePass) Graph() *CallGraph { return p.graphFn() }

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:     p.fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}
