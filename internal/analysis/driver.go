package analysis

import (
	"path/filepath"
	"sort"
	"strings"
)

// Run loads every package matched by patterns, applies each in-scope
// analyzer, filters suppressed findings, and returns the surviving
// diagnostics sorted by (file, line, column, check). Positions inside
// the module are relativized to the module root so output is stable
// across checkouts.
func (l *Loader) Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		all = append(all, l.RunPackage(pkg, analyzers, true)...)
	}
	sortDiagnostics(all)
	return all, nil
}

// RunPackage applies the analyzers to one loaded package and returns
// its surviving diagnostics (unsorted). When honorScope is false every
// analyzer runs regardless of its Scope — the fixture harness uses
// this so testdata packages exercise checks that are scoped to solver
// packages in production runs. Suppression directives are always
// honored (fixtures test them too).
func (l *Loader) RunPackage(pkg *Package, analyzers []*Analyzer, honorScope bool) []Diagnostic {
	var raw []Diagnostic
	report := func(d Diagnostic) {
		d.Pos.Filename = l.relativize(d.Pos.Filename)
		raw = append(raw, d)
	}
	dirs := collectIgnores(pkg, report)
	for i := range dirs {
		dirs[i].file = l.relativize(dirs[i].file)
	}
	for _, a := range analyzers {
		if honorScope && a.Scope != nil && !a.Scope(pkg.Path) {
			continue
		}
		pass := &Pass{Analyzer: a, Pkg: pkg, report: report}
		a.Run(pass)
	}
	out := raw[:0]
	for _, d := range raw {
		if !suppressed(d, dirs) {
			out = append(out, d)
		}
	}
	return out
}

// relativize rewrites module-internal absolute paths relative to the
// module root, with forward slashes, for stable output.
func (l *Loader) relativize(file string) string {
	rel, err := filepath.Rel(l.ModuleDir, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return filepath.ToSlash(rel)
}

// sortDiagnostics orders findings by (file, line, column, check,
// message) so runs are deterministic byte-for-byte.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
