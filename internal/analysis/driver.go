package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Result is one driver run: the surviving findings plus the audit
// numbers around them.
type Result struct {
	// Findings are the surviving diagnostics, sorted by (file, line,
	// column, check) and deduplicated (one finding per check per
	// position).
	Findings []Diagnostic
	// Suppressed counts findings silenced by //tmedbvet:ignore
	// directives — the -json summary CI tracks so suppression drift is
	// as visible as finding drift.
	Suppressed int
	// LoadElapsed is the wall time spent parsing and type-checking.
	LoadElapsed time.Duration
	// Timings holds per-analyzer wall time, in analyzer order.
	Timings []AnalyzerTiming
}

// AnalyzerTiming is one analyzer's accumulated wall time across every
// package of a run.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// Run loads every package matched by patterns, applies each in-scope
// analyzer (per-package analyzers to each package, module analyzers to
// the whole set at once), filters suppressed findings, flags stale
// suppressions, and returns the deduplicated survivors sorted by
// (file, line, column, check). Positions inside the module are
// relativized to the module root so output is stable across checkouts.
func (l *Loader) Run(patterns []string, analyzers []*Analyzer) (*Result, error) {
	dirs, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	loadStart := time.Now()
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	loadElapsed := time.Since(loadStart)
	res := l.runCore(pkgs, l.loadedPackages(), analyzers, true)
	res.LoadElapsed = loadElapsed
	return res, nil
}

// RunPackage applies the analyzers to one loaded package and returns
// its surviving diagnostics (sorted). When honorScope is false every
// analyzer runs regardless of its Scope — the fixture harness uses
// this so testdata packages exercise checks that are scoped to solver
// packages in production runs. Suppression directives are always
// honored, and stale ones flagged (fixtures test both).
func (l *Loader) RunPackage(pkg *Package, analyzers []*Analyzer, honorScope bool) []Diagnostic {
	return l.runCore([]*Package{pkg}, []*Package{pkg}, analyzers, honorScope).Findings
}

// runCore is the shared driver body: pkgs are the packages findings
// are reported for, all is the wider set module-wide passes may
// traverse (pkgs plus loaded dependencies in full runs; just the
// fixture package in fixture runs, so fixtures never diff against the
// real tree).
func (l *Loader) runCore(pkgs, all []*Package, analyzers []*Analyzer, honorScope bool) *Result {
	var raw []Diagnostic
	report := func(d Diagnostic) {
		d.Pos.Filename = l.relativize(d.Pos.Filename)
		raw = append(raw, d)
	}
	discard := func(Diagnostic) {}

	// Suppression context comes from every package findings can land
	// in: module analyzers may report inside dependencies of the
	// matched set. Malformed directives are reported only for matched
	// packages.
	matched := make(map[string]bool, len(pkgs))
	for _, pkg := range pkgs {
		matched[pkg.Path] = true
	}
	facts := make(map[string]*fileFacts)
	var dirs []*ignoreDirective
	for _, pkg := range pkgs {
		dirs = append(dirs, collectIgnores(pkg, report)...)
		collectFileFacts(pkg, true, facts)
	}
	for _, pkg := range all {
		if !matched[pkg.Path] {
			dirs = append(dirs, collectIgnores(pkg, discard)...)
			collectFileFacts(pkg, false, facts)
		}
	}
	for _, ig := range dirs {
		ig.file = l.relativize(ig.file)
	}
	relFacts := make(map[string]*fileFacts, len(facts))
	for name, ff := range facts {
		relFacts[l.relativize(name)] = ff
	}

	// The call graph is built once and shared by every module analyzer.
	var cg *CallGraph
	graphFn := func() *CallGraph {
		if cg == nil {
			cg = BuildCallGraph(all)
		}
		return cg
	}

	timings := make([]AnalyzerTiming, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		if a.Run != nil {
			for _, pkg := range pkgs {
				if honorScope && a.Scope != nil && !a.Scope(pkg.Path) {
					continue
				}
				a.Run(&Pass{Analyzer: a, Pkg: pkg, report: report})
			}
		}
		if a.RunModule != nil {
			scoped := pkgs
			if honorScope && a.Scope != nil {
				scoped = nil
				for _, pkg := range pkgs {
					if a.Scope(pkg.Path) {
						scoped = append(scoped, pkg)
					}
				}
			}
			a.RunModule(&ModulePass{
				Analyzer: a, Packages: scoped, All: all,
				fset: l.Fset, report: report, graphFn: graphFn,
			})
		}
		timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: time.Since(start)})
	}

	sortDiagnostics(raw)
	raw = dedupDiagnostics(raw)

	res := &Result{Timings: timings}
	kept := raw[:0]
	for _, d := range raw {
		if suppressed(d, dirs, relFacts) {
			res.Suppressed++
		} else {
			kept = append(kept, d)
		}
	}
	kept = append(kept, l.staleDirectives(dirs, relFacts, analyzers, honorScope)...)
	sortDiagnostics(kept)
	res.Findings = kept
	return res
}

// staleDirectives flags suppressions that cannot or did not silence
// anything: directives naming the reserved "ignore" check, directives
// naming a check unknown to this run, and well-formed directives whose
// check ran on their package without producing a covered finding.
// Generated files are exempt — their directives are machine-owned and
// may cover findings that come and go across regenerations. Only
// directives inside matched packages are judged (facts track which
// files those are via their package's membership in the run).
func (l *Loader) staleDirectives(dirs []*ignoreDirective, facts map[string]*fileFacts, analyzers []*Analyzer, honorScope bool) []Diagnostic {
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []Diagnostic
	for _, ig := range dirs {
		if ig.used {
			continue
		}
		ff, ok := facts[ig.file]
		if !ok || !ff.matched || ff.generated {
			continue
		}
		pos := token.Position{Filename: ig.file, Line: ig.line, Column: 1}
		switch a := byName[ig.check]; {
		case ig.check == "ignore":
			out = append(out, Diagnostic{Pos: pos, Check: "ignore",
				Message: "directive names the reserved ignore check, which cannot be suppressed — remove it"})
		case a == nil:
			out = append(out, Diagnostic{Pos: pos, Check: "ignore",
				Message: fmt.Sprintf("suppression names unknown check %q — fix the name or remove the directive", ig.check)})
		case !honorScope || a.Scope == nil || a.Scope(ff.pkgPath):
			out = append(out, Diagnostic{Pos: pos, Check: "ignore",
				Message: fmt.Sprintf("stale suppression: no %s finding on the covered lines — remove the directive", ig.check)})
		}
	}
	return out
}

// dedupDiagnostics collapses findings that share (file, line, column,
// check) — two analyzers, or a package and a module pass, reporting
// the same violation at the same position emit once. Input must be
// sorted; the first (message-smallest) survivor is kept.
func dedupDiagnostics(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 {
			p := ds[i-1]
			if p.Pos.Filename == d.Pos.Filename && p.Pos.Line == d.Pos.Line &&
				p.Pos.Column == d.Pos.Column && p.Check == d.Check {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// relativize rewrites module-internal absolute paths relative to the
// module root, with forward slashes, for stable output.
func (l *Loader) relativize(file string) string {
	rel, err := filepath.Rel(l.ModuleDir, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return filepath.ToSlash(rel)
}

// sortDiagnostics orders findings by (file, line, column, check,
// message) so runs are deterministic byte-for-byte.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
