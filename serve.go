package tmedb

// Serving: the pieces behind the tmedbd solve daemon — the shared
// pprof/expvar debug endpoint (also used by the tmedb CLI), the
// content-addressed trace hash keying the daemon's schedule cache, and
// the ladder-shedding policy its admission control applies under load.

import (
	"context"

	"repro/internal/degrade"
	"repro/internal/obs"
)

// DebugServer is a running pprof/expvar debug endpoint. It owns its
// listener, surfaces the serve error (Wait/Close), and shuts down
// gracefully when its context is cancelled — the corrected form of the
// fire-and-forget `go http.Serve` the CLI used to run.
type DebugServer = obs.DebugServer

// ServeDebug binds addr and serves net/http/pprof plus the expvar map
// (including every recorder published via Recorder.PublishExpvar) until
// ctx is cancelled or Close is called. It returns once the listener is
// bound; pass ":0" to let the kernel pick a port and read it from Addr.
func ServeDebug(ctx context.Context, addr string) (*DebugServer, error) {
	return obs.ServeDebug(ctx, addr)
}

// TraceHash returns the stable 64-bit content hash of a trace. Two
// traces hash equal exactly when their contact lists are identical, so
// the hash identifies a trace independently of where it was loaded from
// — the first component of the daemon's schedule cache key.
func TraceHash(t *Trace) uint64 { return t.Hash() }

// ShedLadder trims a degradation ladder for load shedding: it drops the
// rungs of higher quality than r, keeping at least the rung of last
// resort. An overloaded server lowers the starting rung of queued
// requests instead of rejecting them — quality degrades, feasibility
// (the T and ε bounds) never does.
func ShedLadder(ladder []DegradeRung, r DegradeRung) []DegradeRung {
	return degrade.ShedTo(ladder, r)
}
