package tmedb

// Serving: the pieces behind the tmedbd solve daemon — the shared
// pprof/expvar debug endpoint (also used by the tmedb CLI), the
// content-addressed trace hash keying the daemon's schedule cache, and
// the ladder-shedding policy its admission control applies under load.

import (
	"context"
	"io"
	"log/slog"
	"net/http"

	"repro/internal/degrade"
	"repro/internal/obs"
)

// DebugServer is a running pprof/expvar debug endpoint. It owns its
// listener, surfaces the serve error (Wait/Close), and shuts down
// gracefully when its context is cancelled — the corrected form of the
// fire-and-forget `go http.Serve` the CLI used to run.
type DebugServer = obs.DebugServer

// ServeDebug binds addr and serves net/http/pprof plus the expvar map
// (including every recorder published via Recorder.PublishExpvar) until
// ctx is cancelled or Close is called. It returns once the listener is
// bound; pass ":0" to let the kernel pick a port and read it from Addr.
func ServeDebug(ctx context.Context, addr string) (*DebugServer, error) {
	return obs.ServeDebug(ctx, addr)
}

// TraceHash returns the stable 64-bit content hash of a trace. Two
// traces hash equal exactly when their contact lists are identical, so
// the hash identifies a trace independently of where it was loaded from
// — the first component of the daemon's schedule cache key.
func TraceHash(t *Trace) uint64 { return t.Hash() }

// ShedLadder trims a degradation ladder for load shedding: it drops the
// rungs of higher quality than r, keeping at least the rung of last
// resort. An overloaded server lowers the starting rung of queued
// requests instead of rejecting them — quality degrades, feasibility
// (the T and ε bounds) never does.
func ShedLadder(ladder []DegradeRung, r DegradeRung) []DegradeRung {
	return degrade.ShedTo(ladder, r)
}

// Logger is the request-scoped structured event sink threaded through
// SolveWithLadder via context. The nil Logger is the disabled default:
// every method is an allocation-free no-op, and logging is write-only,
// so schedules are byte-identical with logging on or off.
type Logger = obs.Logger

// LogAttr is one structured key-value attribute (build with LogStr,
// LogF64, LogInt).
type LogAttr = obs.Attr

// NewLogger wraps a log/slog handler as a Logger (nil handler = the
// disabled logger).
func NewLogger(h slog.Handler) *Logger { return obs.NewLogger(h) }

// NewTextLogger returns a Logger writing logfmt-style lines to w.
func NewTextLogger(w io.Writer) *Logger { return obs.NewTextLogger(w) }

// NewJSONLogger returns a Logger writing one JSON object per line to w.
func NewJSONLogger(w io.Writer) *Logger { return obs.NewJSONLogger(w) }

// WithLogger returns a context carrying l; solver layers retrieve it
// with LoggerFrom. A nil logger returns ctx unchanged.
func WithLogger(ctx context.Context, l *Logger) context.Context {
	return obs.WithLogger(ctx, l)
}

// LoggerFrom extracts the request-scoped logger from ctx (nil — the
// disabled logger — when none was attached).
func LoggerFrom(ctx context.Context) *Logger { return obs.LoggerFrom(ctx) }

// NewRequestID mints a process-unique request ID: a per-process random
// prefix plus a monotonic counter, so IDs stay unique across daemon
// restarts and fleet-wide log aggregation can join on req_id alone.
func NewRequestID() string { return obs.NewRequestID() }

// LogStr builds a string log attribute.
func LogStr(key, v string) LogAttr { return obs.Str(key, v) }

// LogF64 builds a numeric log attribute.
func LogF64(key string, v float64) LogAttr { return obs.F64(key, v) }

// LogInt builds an integer log attribute.
func LogInt(key string, v int) LogAttr { return obs.I(key, v) }

// Flight is a fixed-size lock-free ring buffer holding the last N
// completed serving requests — the daemon's flight recorder, served as
// JSON at /debug/requests. The nil Flight discards records.
type Flight = obs.Flight

// RequestRecord is one completed request as the flight recorder keeps
// it: params, the rung/cache path that answered, and the outcome.
type RequestRecord = obs.RequestRecord

// NewFlight returns a flight recorder holding the last n requests
// (n <= 0 selects the default capacity of 256).
func NewFlight(n int) *Flight { return obs.NewFlight(n) }

// MetricsHandler serves the Prometheus text exposition of every
// recorder published via Recorder.PublishExpvar — the /metrics twin of
// the expvar /debug/vars page, mounted by ServeDebug and the daemon.
func MetricsHandler() http.Handler { return obs.MetricsHandler() }

// Rolling is a rolling-window distribution (Recorder.Rolling): quantiles
// cover the last W observations while count and sum stay cumulative —
// the SLO view of serving latency, exposed as a Prometheus summary.
type Rolling = obs.Rolling
