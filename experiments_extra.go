package tmedb

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/auxgraph"
	"repro/internal/dts"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// This file holds the validation experiments beyond the paper's §VII
// panels: the §V complexity claims (DTS and auxiliary-graph sizes as the
// network grows) and per-instance approximation-gap certificates from
// the auxiliary-graph lower bound.

// runParallel executes f(0..n-1) across a worker pool of the given size
// (<= 0 selects GOMAXPROCS) and waits. Each index writes only its own
// result slot, so output order is deterministic regardless of
// scheduling.
func runParallel(workers, n int, f func(i int)) {
	parallel.ForEach(parallel.Resolve(workers), n, f)
}

// ComplexityTable validates the §V size claims empirically: for each
// network size it reports the pruned DTS point count, the unpruned
// count (the paper's O(N²L) closure for τ ≈ 0), and the auxiliary
// graph's vertex and edge counts for the default delay window.
func ComplexityTable(cfg ExperimentConfig) FigureResult {
	out := FigureResult{
		Title:  fmt.Sprintf("Complexity: DTS and auxiliary-graph size vs N (§V, delay=%gs)", cfg.Delays[0]),
		XLabel: "N",
	}
	pruned := &Series{Label: "DTS-pruned"}
	full := &Series{Label: "DTS-full"}
	verts := &Series{Label: "aux-vertices"}
	edges := &Series{Label: "aux-edges"}
	deadline := cfg.T0 + cfg.Delays[0]
	type row struct{ p, f, v, e float64 }
	rows := make([]row, len(cfg.Ns))
	runParallel(cfg.workers(), len(cfg.Ns), func(i int) {
		g := cfg.graphFor(cfg.Ns[i], Static)
		// Uncancellable builds (no token in the options) never error.
		dp, _ := dts.Build(g.Graph, cfg.T0, deadline, dts.Options{})
		df, _ := dts.Build(g.Graph, cfg.T0, deadline, dts.Options{NoPrune: true})
		a, _ := auxgraph.Build(g, dp, auxgraph.Options{})
		st := a.Stats()
		rows[i] = row{float64(dp.TotalPoints()), float64(df.TotalPoints()),
			float64(st.Vertices), float64(st.Edges)}
	})
	for i, n := range cfg.Ns {
		pruned.Add(float64(n), rows[i].p)
		full.Add(float64(n), rows[i].f)
		verts.Add(float64(n), rows[i].v)
		edges.Add(float64(n), rows[i].e)
	}
	out.Series = []*Series{pruned, full, verts, edges}
	return out
}

// GapTable certifies per-instance approximation quality: for each
// network size it reports the mean EEDCB cost over the configured
// sources, the mean certified lower bound, and their ratio (an upper
// bound on the realized approximation factor).
func GapTable(cfg ExperimentConfig) FigureResult {
	out := FigureResult{
		Title:  "Approximation gap: EEDCB vs certified lower bound (static)",
		XLabel: "N",
	}
	cost := &Series{Label: "EEDCB"}
	bound := &Series{Label: "lower-bound"}
	ratio := &Series{Label: "gap<="}
	deadline := cfg.T0 + cfg.Delays[0]
	type row struct{ c, b float64 }
	rows := make([]row, len(cfg.Ns))
	runParallel(cfg.workers(), len(cfg.Ns), func(i int) {
		g := cfg.graphFor(cfg.Ns[i], Static)
		var cs, bs []float64
		for _, src := range cfg.Sources {
			if int(src) >= g.N() {
				continue
			}
			s, err := cfg.planSchedule(EEDCB{Level: cfg.SteinerLevel}, g, src, cfg.T0, deadline)
			var ie *IncompleteError
			if err != nil && !errors.As(err, &ie) {
				continue
			}
			if err != nil {
				continue // partial coverage: bound and cost not comparable
			}
			lb, un, err := LowerBound(g, src, cfg.T0, deadline)
			if err != nil || len(un) > 0 || lb <= 0 {
				continue
			}
			cs = append(cs, s.TotalCost())
			bs = append(bs, lb)
		}
		rows[i] = row{stats.Mean(cs), stats.Mean(bs)}
	})
	for i, n := range cfg.Ns {
		c, b := rows[i].c, rows[i].b
		cost.Add(float64(n), c/cfg.Params.GammaTh)
		bound.Add(float64(n), b/cfg.Params.GammaTh)
		if b > 0 {
			ratio.Add(float64(n), c/b)
		} else {
			ratio.Add(float64(n), math.NaN())
		}
	}
	out.Series = []*Series{cost, bound, ratio}
	return out
}
