package tmedb

import (
	"bytes"
	"math"
	"testing"
)

func testGraph(model Model) *Graph {
	g := NewGraph(3, Interval{Start: 0, End: 100}, 0, DefaultParams(), model)
	g.AddContact(0, 1, Interval{Start: 10, End: 30}, 5)
	g.AddContact(1, 2, Interval{Start: 20, End: 50}, 8)
	return g
}

func TestFacadeEndToEndStatic(t *testing.T) {
	g := testGraph(Static)
	s, err := (EEDCB{}).Schedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFeasible(g, s, 0, 100, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	res := Evaluate(g, s, 0, 3, 1)
	if res.MeanDelivery != 1 {
		t.Errorf("delivery = %g, want 1", res.MeanDelivery)
	}
}

func TestFacadeEndToEndFading(t *testing.T) {
	g := testGraph(Rayleigh)
	s, err := (FREEDCB{}).Schedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFeasible(g, s, 0, 100, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	res := Evaluate(g, s, 0, 2000, 1)
	if res.MeanDelivery < 0.97 {
		t.Errorf("FR delivery = %g, want near 1", res.MeanDelivery)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	tr := GenerateTrace(TraceOptions{N: 5, Horizon: 2000}, 3)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != tr.N || len(back.Contacts) != len(tr.Contacts) {
		t.Errorf("round trip mismatch: %d/%d vs %d/%d",
			back.N, len(back.Contacts), tr.N, len(tr.Contacts))
	}
}

func TestFacadeUninformedProb(t *testing.T) {
	g := testGraph(Static)
	w := g.MinCost(0, 1, 15)
	s := Schedule{{Relay: 0, T: 15, W: w}}
	if p := UninformedProb(g, s, 0, 1, 20); p != 0 {
		t.Errorf("p = %g, want 0", p)
	}
	if p := UninformedProb(g, s, 0, 2, 20); p != 1 {
		t.Errorf("p = %g, want 1", p)
	}
}

func TestFacadeSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestFacadeModelsDistinct(t *testing.T) {
	seen := map[Model]bool{Static: false, Rayleigh: false, Rician: false, Nakagami: false}
	if len(seen) != 4 {
		t.Error("channel model constants must be distinct")
	}
}
