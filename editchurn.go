package tmedb

import (
	"errors"
	"fmt"

	"repro/internal/dts"
)

// EditChurnTable exercises the incremental-edit path end to end: one
// live graph absorbs a deterministic stream of single-contact edits
// (add, retime, remove) and is re-planned after every edit, so each
// re-solve derives its DTS from the previous version's memoized core
// (the dts.patch.* counters in cfg.Obs) instead of rebuilding from
// scratch. The table reports, per edit, the planned energy, the graph
// version, and the cumulative patch-derivation count — all deterministic,
// so the panel doubles as a regression table while the run report's
// counters (dts.patch.hit_rate) feed the CI perf gate.
func EditChurnTable(cfg ExperimentConfig) FigureResult {
	const rounds = 12
	n := 20
	if opts := cfg.TraceOpts; opts.N != 0 && opts.N < n {
		n = opts.N
	}
	out := FigureResult{
		Title: fmt.Sprintf("Incremental edit churn: patched re-solve after single-contact edits (static, N=%d, delay=%gs)",
			n, cfg.Delays[0]),
		XLabel: "edit",
	}
	energy := &Series{Label: "energy"}
	version := &Series{Label: "version"}
	patched := &Series{Label: "patch-hits"}

	g := cfg.graphFor(n, Static)
	alg := EEDCB{Level: cfg.SteinerLevel, Workers: cfg.workers(), Obs: cfg.Obs}
	src := cfg.Sources[0]
	deadline := cfg.T0 + cfg.Delays[0]
	solve := func() float64 {
		s, err := alg.Schedule(g, src, cfg.T0, deadline)
		var inc *IncompleteError
		if err != nil && !errors.As(err, &inc) {
			panic(fmt.Sprintf("tmedb: edit churn solve: %v", err))
		}
		return s.TotalCost() / cfg.Params.GammaTh
	}
	solve() // warm the version-keyed memos: every churn round derives from here
	hits0, _ := dts.PatchStats()

	// The churn only ever retimes or removes contacts it added itself, so
	// every operation is guaranteed applicable no matter what the base
	// trace holds; `last` tracks the live added contact.
	var last struct {
		j  NodeID
		iv Interval
	}
	for r := 1; r <= rounds; r++ {
		switch r % 3 {
		case 1: // add a fresh contact inside the solve window
			last.j = NodeID(1 + r%(n-1))
			last.iv = Interval{Start: cfg.T0 + 40*float64(r), End: cfg.T0 + 40*float64(r) + 180}
			g.AddContact(src, last.j, last.iv, 7)
		case 2: // retime it later in the window (falls back to a fresh
			// add if the target collides with a base-trace contact)
			to := Interval{Start: last.iv.Start + 90, End: last.iv.End + 90}
			if ok, err := g.RetimeChannel(src, last.j, last.iv, to); err != nil {
				last.iv = Interval{Start: to.End + 30, End: to.End + 210}
				g.AddContact(src, last.j, last.iv, 7)
			} else if ok {
				last.iv = to
			}
		default: // remove it again, restoring the base contact set
			g.RemoveContact(src, last.j, last.iv)
		}
		e := solve()
		hits, _ := dts.PatchStats()
		energy.Add(float64(r), e)
		version.Add(float64(r), float64(g.Version()))
		patched.Add(float64(r), float64(hits-hits0))
	}
	out.Series = []*Series{energy, version, patched}
	return out
}
