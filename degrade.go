package tmedb

// Deadline-bounded solving: context cancellation through every planner
// and the budget-aware degradation ladder of internal/degrade.

import (
	"context"

	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/degrade"
)

// Typed cancellation errors. Every planner's ScheduleCtx (and
// SolveWithLadder) returns one of these — wrapped, so match with
// errors.Is — when its context is cancelled or its deadline expires.
var (
	// ErrCancelled reports an explicit context cancellation.
	ErrCancelled = cancel.ErrCancelled
	// ErrBudgetExceeded reports an expired context deadline / solve
	// budget.
	ErrBudgetExceeded = cancel.ErrBudgetExceeded
)

// Context-aware planning.
type (
	// ContextScheduler is a Scheduler whose planning honors context
	// cancellation and deadlines. All six planners implement it.
	ContextScheduler = core.ContextScheduler
	// DegradeOptions tunes the budget-aware degradation ladder.
	DegradeOptions = degrade.Options
	// DegradeOutcome reports which ladder rung produced a schedule and
	// why earlier rungs were abandoned.
	DegradeOutcome = degrade.Outcome
	// DegradeRung is one level of the degradation ladder.
	DegradeRung = degrade.Rung
)

// Degradation-ladder rungs, ordered from highest solution quality to
// fastest fallback.
const (
	// RungFull is the paper's primary planner (FR-EEDCB / EEDCB).
	RungFull = degrade.RungFull
	// RungSPT is the level-1 shortest-path-tree variant.
	RungSPT = degrade.RungSPT
	// RungGreed is the coverage-greedy backbone (GREED / FR-GREED).
	RungGreed = degrade.RungGreed
	// RungRand is the random-relay backbone (RAND / FR-RAND).
	RungRand = degrade.RungRand
)

// DefaultLadder returns the standard quality-ordered rung sequence.
func DefaultLadder() []DegradeRung { return degrade.DefaultLadder() }

// ParseLadder parses a comma-separated rung list ("full,greed,rand");
// the empty string yields the default ladder.
func ParseLadder(s string) ([]DegradeRung, error) { return degrade.ParseLadder(s) }

// ScheduleWithContext plans under ctx when the scheduler supports
// cancellation (all six planners do), falling back to the plain
// uncancellable Schedule otherwise. With a background context the
// planner takes the exact pre-cancellation code path, so completed
// solves are byte-identical to Schedule.
func ScheduleWithContext(ctx context.Context, s Scheduler, g *Graph, src NodeID, t0, deadline float64) (Schedule, error) {
	return core.ScheduleWithContext(ctx, s, g, src, t0, deadline)
}

// SolveWithLadder plans a broadcast under a total wall-clock budget,
// walking the degradation ladder (FR-EEDCB/EEDCB → SPT → GREED → RAND)
// and falling to the next rung whenever the current one exhausts its
// share. Every rung plans on the model-true view, so fallback schedules
// stay T- and ε-feasible; only energy quality degrades. The Outcome
// records the winning rung and can annotate a schedule meta block.
func SolveWithLadder(ctx context.Context, g *Graph, src NodeID, t0, deadline float64, opts DegradeOptions) (Schedule, *DegradeOutcome, error) {
	return degrade.Solve(ctx, g, src, t0, deadline, opts)
}
