// Package jsonfix feeds cmd/tmedbvet's golden-output test: one
// finding from each module-wide rule (a sentinel identity comparison,
// a discarded span, and a malformed suppression directive), at pinned
// positions the .golden file records byte-for-byte.
package jsonfix

import (
	"context"

	"repro/internal/obs"
)

//tmedbvet:ignore

// IsCtxCancelled compares the sentinel by identity.
func IsCtxCancelled(err error) bool {
	return err == context.Canceled
}

// Probe drops its span on the floor.
func Probe(rec *obs.Recorder) {
	rec.StartPhase("probe")
}
