// Command tmedbvet is the repo's static-analysis gate: it loads the
// module packages matched by its arguments, runs the contract
// analyzers from internal/analysis/checks (determinism, cancellation,
// float tolerance, span pairing, hot-path allocation, atomic access,
// goroutine completion), and exits non-zero when any non-suppressed
// finding remains.
//
// Usage:
//
//	go run ./cmd/tmedbvet [-json] [-list] [-v] [packages...]
//
// Packages default to ./... relative to the current module. Findings
// print as file:line:col: [check] message, or with -json as an object
// {"findings": [...], "summary": {"findings": N, "suppressed": M}}
// (the stable shape CI annotations parse; see DESIGN.md §10). -v adds
// a per-analyzer wall-time breakdown on stderr. Suppress a finding
// inline with
//
//	//tmedbvet:ignore <check> <reason>
//
// on the finding's line or the line above (a directive above a
// multi-line statement covers the whole statement); the reason is
// mandatory, and a directive that suppresses nothing is itself
// reported as stale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/checks"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams so cmd tests can drive it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tmedbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON object instead of text")
	list := fs.Bool("list", false, "list the registered checks and exit")
	verbose := fs.Bool("v", false, "print per-analyzer wall time on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := checks.All()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "tmedbvet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "tmedbvet:", err)
		return 2
	}
	res, err := loader.Run(patterns, all)
	if err != nil {
		fmt.Fprintln(stderr, "tmedbvet:", err)
		return 2
	}
	if *verbose {
		if err := analysis.WriteTimings(stderr, res); err != nil {
			fmt.Fprintln(stderr, "tmedbvet:", err)
			return 2
		}
	}

	if *jsonOut {
		if err := analysis.WriteJSON(stdout, res); err != nil {
			fmt.Fprintln(stderr, "tmedbvet:", err)
			return 2
		}
	} else if err := analysis.WriteText(stdout, res.Findings); err != nil {
		fmt.Fprintln(stderr, "tmedbvet:", err)
		return 2
	}
	if len(res.Findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "tmedbvet: %d finding(s), %d suppressed\n", len(res.Findings), res.Suppressed)
		}
		return 1
	}
	return 0
}
