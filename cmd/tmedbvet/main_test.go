package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// jsonfixPattern addresses the seeded-findings fixture the way a user
// would from the module root: patterns resolve against the enclosing
// module, not the test's working directory.
const jsonfixPattern = "cmd/tmedbvet/testdata/jsonfix"

func TestJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", jsonfixPattern}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "jsonfix.golden"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if stdout.String() != string(golden) {
		t.Errorf("-json output drifted from testdata/jsonfix.golden.\ngot:\n%s\nwant:\n%s",
			stdout.String(), golden)
	}
	if stderr.Len() != 0 {
		t.Errorf("-json mode wrote to stderr: %q", stderr.String())
	}
}

func TestTextMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{jsonfixPattern}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	for _, check := range []string{"[ignore]", "[cancelthread]", "[spanpair]"} {
		if !strings.Contains(stdout.String(), check) {
			t.Errorf("text output missing %s finding:\n%s", check, stdout.String())
		}
	}
	if want := "tmedbvet: 3 finding(s), 0 suppressed\n"; stderr.String() != want {
		t.Errorf("stderr = %q, want %q", stderr.String(), want)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "repro/internal/schedule"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout: %s, stderr: %s)",
			code, stdout.String(), stderr.String())
	}
	// The envelope always carries both keys: an empty findings array
	// and a summary block (the suppressed count varies with the
	// package's own directives, so only the shape is pinned).
	for _, want := range []string{"\"findings\": []", "\"findings\": 0", "\"suppressed\":"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("clean -json output missing %q:\n%s", want, stdout.String())
		}
	}
}

func TestListChecks(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"atomiconly", "cancelthread", "detrange", "floateq",
		"goexit", "hotalloc", "logconst", "nondeterm", "spanpair"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestMissingPackageExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"internal/no/such/package"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if stderr.Len() == 0 {
		t.Error("load failure produced no stderr message")
	}
}
