package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// loadReport reads an obs run report (the JSON written by
// cmd/figures -metrics) from path.
func loadReport(path string) (*obs.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r obs.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported report version %d", path, r.Version)
	}
	return &r, nil
}

// phaseSums walks the phase tree and returns, for each target name, the
// total wall_ms of the maximal spans carrying that name. A span whose
// ancestor already matched the same name is not counted again — its time
// is part of the ancestor's — so recursive phases (steiner inside
// steiner) are never double-billed. Distinct target names nested inside
// each other (dcs-construct inside auxgraph) each keep their own sum.
func phaseSums(phases []obs.PhaseReport, targets []string) map[string]float64 {
	want := make(map[string]bool, len(targets))
	for _, t := range targets {
		want[t] = true
	}
	acc := make(map[string]float64, len(targets))
	for _, t := range targets {
		acc[t] = 0
	}
	active := make(map[string]bool)
	var walk func(n obs.PhaseReport)
	walk = func(n obs.PhaseReport) {
		entered := false
		if want[n.Name] && !active[n.Name] {
			acc[n.Name] += n.WallMS
			active[n.Name] = true
			entered = true
		}
		for _, c := range n.Children {
			walk(c)
		}
		if entered {
			delete(active, n.Name)
		}
	}
	for _, p := range phases {
		walk(p)
	}
	return acc
}

// row is one line of the comparison: a phase (or the synthetic "total")
// with its baseline and current wall_ms.
type row struct {
	Name      string
	Base      float64
	Cur       float64
	Regressed bool
}

// ratio returns current/baseline; +0%/no-regression when the baseline
// span is absent or zero (a phase that did not run cannot regress by
// ratio — it is reported but never gates).
func (r row) ratio() (float64, bool) {
	if r.Base <= 0 {
		return 0, false
	}
	return r.Cur / r.Base, true
}

// compare builds the comparison table for the total wall time plus each
// target phase, flagging rows whose current time exceeds baseline by
// more than tol (0.40 = fail above +40%).
func compare(base, cur *obs.Report, targets []string, tol float64) []row {
	bs := phaseSums(base.Phases, targets)
	cs := phaseSums(cur.Phases, targets)
	rows := make([]row, 0, len(targets)+1)
	rows = append(rows, row{Name: "total", Base: base.WallMS, Cur: cur.WallMS})
	names := append([]string(nil), targets...)
	sort.Strings(names)
	for _, n := range names {
		rows = append(rows, row{Name: n, Base: bs[n], Cur: cs[n]})
	}
	for i := range rows {
		if q, ok := rows[i].ratio(); ok && q > 1+tol {
			rows[i].Regressed = true
		}
	}
	return rows
}

// format renders the comparison as an aligned text table.
func format(rows []row, tol float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %14s %14s %9s  %s\n", "phase", "baseline(ms)", "current(ms)", "delta", "verdict")
	for _, r := range rows {
		verdict := "ok"
		delta := "n/a"
		if q, ok := r.ratio(); ok {
			delta = fmt.Sprintf("%+.1f%%", (q-1)*100)
			if r.Regressed {
				verdict = fmt.Sprintf("REGRESSED (> +%.0f%%)", tol*100)
			}
		} else {
			verdict = "skipped (no baseline)"
		}
		fmt.Fprintf(&b, "%-16s %14.3f %14.3f %9s  %s\n", r.Name, r.Base, r.Cur, delta, verdict)
	}
	return b.String()
}
