package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

// loadReport reads an obs run report (the JSON written by
// cmd/figures -metrics) from path.
func loadReport(path string) (*obs.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r obs.Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Version != 1 {
		return nil, fmt.Errorf("%s: unsupported report version %d", path, r.Version)
	}
	return &r, nil
}

// phaseSums walks the phase tree and returns, for each target name, the
// total wall_ms of the maximal spans carrying that name. A span whose
// ancestor already matched the same name is not counted again — its time
// is part of the ancestor's — so recursive phases (steiner inside
// steiner) are never double-billed. Distinct target names nested inside
// each other (dcs-construct inside auxgraph) each keep their own sum.
func phaseSums(phases []obs.PhaseReport, targets []string) map[string]float64 {
	want := make(map[string]bool, len(targets))
	for _, t := range targets {
		want[t] = true
	}
	acc := make(map[string]float64, len(targets))
	for _, t := range targets {
		acc[t] = 0
	}
	active := make(map[string]bool)
	var walk func(n obs.PhaseReport)
	walk = func(n obs.PhaseReport) {
		entered := false
		if want[n.Name] && !active[n.Name] {
			acc[n.Name] += n.WallMS
			active[n.Name] = true
			entered = true
		}
		for _, c := range n.Children {
			walk(c)
		}
		if entered {
			delete(active, n.Name)
		}
	}
	for _, p := range phases {
		walk(p)
	}
	return acc
}

// row is one line of the comparison: a phase (or the synthetic "total")
// with its baseline and current wall_ms, or a counter/gauge with its
// baseline and current value.
type row struct {
	Name      string
	Base      float64
	Cur       float64
	Regressed bool
	// LowerIsWorse flips the gate direction: quality metrics (hit
	// rates) regress by falling, cost metrics (allocation counts, wall
	// times) by rising.
	LowerIsWorse bool
}

// ratio returns current/baseline; +0%/no-regression when the baseline
// span is absent or zero (a phase that did not run cannot regress by
// ratio — it is reported but never gates).
func (r row) ratio() (float64, bool) {
	if r.Base <= 0 {
		return 0, false
	}
	return r.Cur / r.Base, true
}

// compare builds the comparison table for the total wall time plus each
// target phase, flagging rows whose current time exceeds baseline by
// more than tol (0.40 = fail above +40%).
func compare(base, cur *obs.Report, targets []string, tol float64) []row {
	bs := phaseSums(base.Phases, targets)
	cs := phaseSums(cur.Phases, targets)
	rows := make([]row, 0, len(targets)+1)
	rows = append(rows, row{Name: "total", Base: base.WallMS, Cur: cur.WallMS})
	names := append([]string(nil), targets...)
	sort.Strings(names)
	for _, n := range names {
		rows = append(rows, row{Name: n, Base: bs[n], Cur: cs[n]})
	}
	for i := range rows {
		if q, ok := rows[i].ratio(); ok && q > 1+tol {
			rows[i].Regressed = true
		}
	}
	return rows
}

// metricValue resolves a gated metric name in a report. Plain names
// look up the counter map first, then the gauges. The derived
// "<base>.hit_rate" form computes hits/(hits+misses) from the
// "<base>.hits"/"<base>.misses" counters (falling back to same-named
// gauges, where cache sampling records them) — the cache-effectiveness
// view, which regresses by falling rather than rising.
func metricValue(r *obs.Report, name string) (v float64, lowerIsWorse, ok bool) {
	if base, isRate := strings.CutSuffix(name, ".hit_rate"); isRate {
		hits, hok := lookupNum(r, base+".hits")
		misses, mok := lookupNum(r, base+".misses")
		if !hok || !mok || hits+misses == 0 {
			return 0, true, false
		}
		return hits / (hits + misses), true, true
	}
	v, ok = lookupNum(r, name)
	return v, false, ok
}

func lookupNum(r *obs.Report, name string) (float64, bool) {
	if c, ok := r.Counters[name]; ok {
		return float64(c), true
	}
	if g, ok := r.Gauges[name]; ok {
		return g, true
	}
	return 0, false
}

// compareMetrics builds comparison rows for gated counters/gauges.
// Cost metrics regress above baseline*(1+tol); hit rates regress below
// baseline*(1-tol). A metric absent from the baseline (or with a zero
// denominator) is reported but never gates, mirroring the phase rule.
func compareMetrics(base, cur *obs.Report, names []string, tol float64) []row {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	rows := make([]row, 0, len(sorted))
	for _, n := range sorted {
		bv, lower, bok := metricValue(base, n)
		cv, _, cok := metricValue(cur, n)
		r := row{Name: n, Base: bv, Cur: cv, LowerIsWorse: lower}
		if bok && cok && bv > 0 {
			q := cv / bv
			if lower && q < 1-tol {
				r.Regressed = true
			}
			if !lower && q > 1+tol {
				r.Regressed = true
			}
		}
		if !bok {
			r.Base = 0
		}
		rows = append(rows, r)
	}
	return rows
}

// format renders the comparison as an aligned text table.
func format(rows []row, tol float64) string {
	return formatTable(rows, tol, "phase", "baseline(ms)", "current(ms)")
}

// formatMetrics renders the counter/gauge comparison table.
func formatMetrics(rows []row, tol float64) string {
	return formatTable(rows, tol, "metric", "baseline", "current")
}

func formatTable(rows []row, tol float64, label, baseCol, curCol string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %14s %14s %9s  %s\n", label, baseCol, curCol, "delta", "verdict")
	for _, r := range rows {
		verdict := "ok"
		delta := "n/a"
		if q, ok := r.ratio(); ok {
			delta = fmt.Sprintf("%+.1f%%", (q-1)*100)
			if r.Regressed {
				if r.LowerIsWorse {
					verdict = fmt.Sprintf("REGRESSED (< -%.0f%%)", tol*100)
				} else {
					verdict = fmt.Sprintf("REGRESSED (> +%.0f%%)", tol*100)
				}
			}
		} else {
			verdict = "skipped (no baseline)"
		}
		fmt.Fprintf(&b, "%-24s %14.3f %14.3f %9s  %s\n", r.Name, r.Base, r.Cur, delta, verdict)
	}
	return b.String()
}
