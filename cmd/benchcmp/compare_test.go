package main

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

const floatTol = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) <= floatTol }

func load(t *testing.T, name string) *obs.Report {
	t.Helper()
	r, err := loadReport(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("loadReport(%s): %v", name, err)
	}
	return r
}

// phaseSums must sum maximal same-name spans: the steiner-inside-steiner
// span in base.json (90ms nested in 180ms) is part of its parent and must
// not be double-counted, while dcs-construct nested inside auxgraph keeps
// its own independent sum.
func TestPhaseSumsMaximalSpans(t *testing.T) {
	r := load(t, "base.json")
	sums := phaseSums(r.Phases, []string{"auxgraph", "dcs-construct", "steiner"})
	want := map[string]float64{
		"auxgraph":      400, // 300 (eedcb) + 100 (freedcb)
		"dcs-construct": 250, // 200 + 50, counted despite auxgraph ancestors
		"steiner":       300, // 180 (nested 90 excluded) + 120
	}
	for name, w := range want {
		if !approx(sums[name], w) {
			t.Errorf("phaseSums[%s] = %g, want %g", name, sums[name], w)
		}
	}
}

func TestPhaseSumsMissingPhase(t *testing.T) {
	r := load(t, "base.json")
	sums := phaseSums(r.Phases, []string{"no-such-phase"})
	if got := sums["no-such-phase"]; got != 0 {
		t.Errorf("missing phase sum = %g, want 0", got)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := load(t, "base.json")
	cur := load(t, "regressed.json")
	rows := compare(base, cur, []string{"auxgraph", "dcs-construct", "steiner"}, 0.40)
	got := map[string]bool{}
	for _, r := range rows {
		got[r.Name] = r.Regressed
	}
	// auxgraph went 400 -> 720 (+80%): regressed. Total +10%, steiner
	// flat, dcs-construct improved: all within tolerance.
	want := map[string]bool{
		"total":         false,
		"auxgraph":      true,
		"dcs-construct": false,
		"steiner":       false,
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("row %s regressed = %v, want %v", name, got[name], w)
		}
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := load(t, "base.json")
	cur := load(t, "improved.json")
	for _, r := range compare(base, cur, []string{"auxgraph", "dcs-construct", "steiner"}, 0.40) {
		if r.Regressed {
			t.Errorf("row %s flagged regressed on an improvement", r.Name)
		}
	}
}

// A phase absent from the baseline must be reported but never gate: a
// ratio against zero is meaningless.
func TestCompareZeroBaselineNeverGates(t *testing.T) {
	base := load(t, "base.json")
	cur := load(t, "regressed.json")
	rows := compare(base, cur, []string{"dts-unseen"}, 0.40)
	for _, r := range rows {
		if r.Name == "dts-unseen" {
			if r.Regressed {
				t.Error("zero-baseline phase gated")
			}
			if _, ok := r.ratio(); ok {
				t.Error("zero-baseline phase reported a ratio")
			}
		}
	}
}

func TestRunExitCodes(t *testing.T) {
	base := filepath.Join("testdata", "base.json")
	cases := []struct {
		name     string
		baseline string
		current  string
		tol      float64
		want     int
	}{
		{"pass", base, filepath.Join("testdata", "improved.json"), 0.40, 0},
		{"regress", base, filepath.Join("testdata", "regressed.json"), 0.40, 1},
		{"tight tolerance trips on total", base, filepath.Join("testdata", "regressed.json"), 0.05, 1},
		{"missing file", base, filepath.Join("testdata", "nope.json"), 0.40, 2},
		{"missing flag", "", base, 0.40, 2},
		{"negative tol", base, base, -1, 2},
	}
	for _, c := range cases {
		if got := run(c.baseline, c.current, "auxgraph,dcs-construct,steiner", "", c.tol); got != c.want {
			t.Errorf("%s: run() = %d, want %d", c.name, got, c.want)
		}
	}
}

// metricReport builds a report carrying only counters/gauges, the shape
// compareMetrics consumes.
func metricReport(counters map[string]int64, gauges map[string]float64) *obs.Report {
	return &obs.Report{Version: 1, Counters: counters, Gauges: gauges}
}

// TestCompareMetricsCostCounters pins the cost direction: a plain
// counter regresses by rising beyond tolerance, never by falling.
func TestCompareMetricsCostCounters(t *testing.T) {
	base := metricReport(map[string]int64{"graph.arena.allocs": 100}, nil)
	worse := metricReport(map[string]int64{"graph.arena.allocs": 150}, nil)
	better := metricReport(map[string]int64{"graph.arena.allocs": 50}, nil)

	rows := compareMetrics(base, worse, []string{"graph.arena.allocs"}, 0.40)
	if len(rows) != 1 || !rows[0].Regressed {
		t.Errorf("+50%% allocs at 40%% tol should regress: %+v", rows)
	}
	rows = compareMetrics(base, better, []string{"graph.arena.allocs"}, 0.40)
	if rows[0].Regressed {
		t.Errorf("fewer allocs flagged as regression: %+v", rows)
	}
}

// TestCompareMetricsHitRate pins the derived quality direction: the
// <base>.hit_rate form computes hits/(hits+misses) and regresses by
// falling beyond tolerance.
func TestCompareMetricsHitRate(t *testing.T) {
	base := metricReport(map[string]int64{"dts.memo.hits": 80, "dts.memo.misses": 20}, nil)
	worse := metricReport(map[string]int64{"dts.memo.hits": 20, "dts.memo.misses": 80}, nil)
	better := metricReport(map[string]int64{"dts.memo.hits": 95, "dts.memo.misses": 5}, nil)

	rows := compareMetrics(base, worse, []string{"dts.memo.hit_rate"}, 0.40)
	if len(rows) != 1 || !rows[0].Regressed {
		t.Errorf("hit rate 0.8 -> 0.2 at 40%% tol should regress: %+v", rows)
	}
	if !approx(rows[0].Base, 0.8) || !approx(rows[0].Cur, 0.2) {
		t.Errorf("derived rates = %g -> %g, want 0.8 -> 0.2", rows[0].Base, rows[0].Cur)
	}
	rows = compareMetrics(base, better, []string{"dts.memo.hit_rate"}, 0.40)
	if rows[0].Regressed {
		t.Errorf("improved hit rate flagged as regression: %+v", rows)
	}
	// A rate falls within tolerance: 0.8 -> 0.6 is -25%, under 40%.
	mild := metricReport(map[string]int64{"dts.memo.hits": 60, "dts.memo.misses": 40}, nil)
	rows = compareMetrics(base, mild, []string{"dts.memo.hit_rate"}, 0.40)
	if rows[0].Regressed {
		t.Errorf("-25%% hit rate at 40%% tol flagged: %+v", rows)
	}
}

// TestCompareMetricsGaugeFallback pins the gauge fallback: names absent
// from the counter map resolve in the gauges (cache sampling records
// hits/misses as gauges), and a metric with no baseline never gates.
func TestCompareMetricsGaugeFallback(t *testing.T) {
	base := metricReport(nil, map[string]float64{"cache.cost.hits": 90, "cache.cost.misses": 10})
	cur := metricReport(nil, map[string]float64{"cache.cost.hits": 10, "cache.cost.misses": 90})
	rows := compareMetrics(base, cur, []string{"cache.cost.hit_rate"}, 0.40)
	if len(rows) != 1 || !rows[0].Regressed {
		t.Errorf("gauge-backed hit rate collapse should regress: %+v", rows)
	}

	rows = compareMetrics(metricReport(nil, nil), cur, []string{"cache.cost.hit_rate", "nope"}, 0.40)
	for _, r := range rows {
		if r.Regressed {
			t.Errorf("metric with no baseline gated: %+v", r)
		}
	}
}

// TestRunExitCodesWithCounters pins the end-to-end gate: identical
// reports pass with counters gated, and formatMetrics renders the
// metric table.
func TestRunExitCodesWithCounters(t *testing.T) {
	base := filepath.Join("testdata", "base.json")
	// base.json has no counters, so gating on absent metrics must not
	// fail the run (skipped, not regressed).
	if got := run(base, base, "auxgraph", "graph.arena.allocs,dts.memo.hit_rate", 0.40); got != 0 {
		t.Errorf("identical reports with counter gates: run() = %d, want 0", got)
	}
	out := formatMetrics(compareMetrics(
		metricReport(map[string]int64{"x": 10}, nil),
		metricReport(map[string]int64{"x": 20}, nil),
		[]string{"x"}, 0.40), 0.40)
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "metric") {
		t.Errorf("formatMetrics output lacks verdict/header:\n%s", out)
	}
}

func TestFormatMentionsVerdicts(t *testing.T) {
	base := load(t, "base.json")
	cur := load(t, "regressed.json")
	out := format(compare(base, cur, []string{"auxgraph"}, 0.40), 0.40)
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("format output lacks REGRESSED verdict:\n%s", out)
	}
	if !strings.Contains(out, "total") {
		t.Errorf("format output lacks total row:\n%s", out)
	}
}
