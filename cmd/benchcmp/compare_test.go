package main

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

const floatTol = 1e-9

func approx(a, b float64) bool { return math.Abs(a-b) <= floatTol }

func load(t *testing.T, name string) *obs.Report {
	t.Helper()
	r, err := loadReport(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("loadReport(%s): %v", name, err)
	}
	return r
}

// phaseSums must sum maximal same-name spans: the steiner-inside-steiner
// span in base.json (90ms nested in 180ms) is part of its parent and must
// not be double-counted, while dcs-construct nested inside auxgraph keeps
// its own independent sum.
func TestPhaseSumsMaximalSpans(t *testing.T) {
	r := load(t, "base.json")
	sums := phaseSums(r.Phases, []string{"auxgraph", "dcs-construct", "steiner"})
	want := map[string]float64{
		"auxgraph":      400, // 300 (eedcb) + 100 (freedcb)
		"dcs-construct": 250, // 200 + 50, counted despite auxgraph ancestors
		"steiner":       300, // 180 (nested 90 excluded) + 120
	}
	for name, w := range want {
		if !approx(sums[name], w) {
			t.Errorf("phaseSums[%s] = %g, want %g", name, sums[name], w)
		}
	}
}

func TestPhaseSumsMissingPhase(t *testing.T) {
	r := load(t, "base.json")
	sums := phaseSums(r.Phases, []string{"no-such-phase"})
	if got := sums["no-such-phase"]; got != 0 {
		t.Errorf("missing phase sum = %g, want 0", got)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := load(t, "base.json")
	cur := load(t, "regressed.json")
	rows := compare(base, cur, []string{"auxgraph", "dcs-construct", "steiner"}, 0.40)
	got := map[string]bool{}
	for _, r := range rows {
		got[r.Name] = r.Regressed
	}
	// auxgraph went 400 -> 720 (+80%): regressed. Total +10%, steiner
	// flat, dcs-construct improved: all within tolerance.
	want := map[string]bool{
		"total":         false,
		"auxgraph":      true,
		"dcs-construct": false,
		"steiner":       false,
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("row %s regressed = %v, want %v", name, got[name], w)
		}
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := load(t, "base.json")
	cur := load(t, "improved.json")
	for _, r := range compare(base, cur, []string{"auxgraph", "dcs-construct", "steiner"}, 0.40) {
		if r.Regressed {
			t.Errorf("row %s flagged regressed on an improvement", r.Name)
		}
	}
}

// A phase absent from the baseline must be reported but never gate: a
// ratio against zero is meaningless.
func TestCompareZeroBaselineNeverGates(t *testing.T) {
	base := load(t, "base.json")
	cur := load(t, "regressed.json")
	rows := compare(base, cur, []string{"dts-unseen"}, 0.40)
	for _, r := range rows {
		if r.Name == "dts-unseen" {
			if r.Regressed {
				t.Error("zero-baseline phase gated")
			}
			if _, ok := r.ratio(); ok {
				t.Error("zero-baseline phase reported a ratio")
			}
		}
	}
}

func TestRunExitCodes(t *testing.T) {
	base := filepath.Join("testdata", "base.json")
	cases := []struct {
		name     string
		baseline string
		current  string
		tol      float64
		want     int
	}{
		{"pass", base, filepath.Join("testdata", "improved.json"), 0.40, 0},
		{"regress", base, filepath.Join("testdata", "regressed.json"), 0.40, 1},
		{"tight tolerance trips on total", base, filepath.Join("testdata", "regressed.json"), 0.05, 1},
		{"missing file", base, filepath.Join("testdata", "nope.json"), 0.40, 2},
		{"missing flag", "", base, 0.40, 2},
		{"negative tol", base, base, -1, 2},
	}
	for _, c := range cases {
		if got := run(c.baseline, c.current, "auxgraph,dcs-construct,steiner", c.tol); got != c.want {
			t.Errorf("%s: run() = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestFormatMentionsVerdicts(t *testing.T) {
	base := load(t, "base.json")
	cur := load(t, "regressed.json")
	out := format(compare(base, cur, []string{"auxgraph"}, 0.40), 0.40)
	if !strings.Contains(out, "REGRESSED") {
		t.Errorf("format output lacks REGRESSED verdict:\n%s", out)
	}
	if !strings.Contains(out, "total") {
		t.Errorf("format output lacks total row:\n%s", out)
	}
}
