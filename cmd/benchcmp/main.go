// Command benchcmp compares two obs run reports (the JSON written by
// `cmd/figures -metrics`) and fails when the current run regresses the
// total wall time or any gated phase by more than the tolerance. It is
// the CI perf-regression gate: the bench workflow runs the quick Fig4-7
// sweep on every pull request and compares it against the committed
// BENCH_pr*.json baseline.
//
// Per-phase times are the sums over maximal spans of that name in the
// phase tree — a recursive span never double-counts its own nested
// occurrences (see phaseSums).
//
// -counters additionally gates counter/gauge values: plain names
// (allocation counts, memo misses) fail on increase beyond the
// tolerance; the derived "<base>.hit_rate" form — hits/(hits+misses)
// from the <base>.hits / <base>.misses counters or gauges — fails on
// decrease, so cache-effectiveness regressions are caught even when
// wall times still pass.
//
// Exit codes: 0 = within tolerance, 1 = at least one gated phase (or
// the total) regressed, 2 = usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		baseline = flag.String("baseline", "", "committed baseline report (BENCH_pr*.json)")
		current  = flag.String("current", "", "freshly produced report to gate")
		phases   = flag.String("phases", "auxgraph,dcs-construct,steiner", "comma-separated phase names to gate")
		counters = flag.String("counters", "", "comma-separated counters/gauges to gate; plain names fail on increase, the derived <base>.hit_rate (from <base>.hits/<base>.misses) fails on decrease")
		tol      = flag.Float64("tol", 0.40, "allowed fractional regression before failing (0.40 = ±40%)")
	)
	flag.Parse()
	os.Exit(run(*baseline, *current, *phases, *counters, *tol))
}

func run(baselinePath, currentPath, phaseList, counterList string, tol float64) int {
	if baselinePath == "" || currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -baseline and -current are required")
		flag.Usage()
		return 2
	}
	if tol < 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: -tol must be >= 0")
		return 2
	}
	base, err := loadReport(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: baseline: %v\n", err)
		return 2
	}
	cur, err := loadReport(currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: current: %v\n", err)
		return 2
	}
	var targets []string
	for _, p := range strings.Split(phaseList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			targets = append(targets, p)
		}
	}
	rows := compare(base, cur, targets, tol)
	fmt.Print(format(rows, tol))
	var metrics []string
	for _, m := range strings.Split(counterList, ",") {
		if m = strings.TrimSpace(m); m != "" {
			metrics = append(metrics, m)
		}
	}
	if len(metrics) > 0 {
		mrows := compareMetrics(base, cur, metrics, tol)
		fmt.Println()
		fmt.Print(formatMetrics(mrows, tol))
		rows = append(rows, mrows...)
	}
	for _, r := range rows {
		if r.Regressed {
			fmt.Printf("\nFAIL: perf regression beyond ±%.0f%% tolerance\n", tol*100)
			return 1
		}
	}
	fmt.Println("\nOK: within tolerance")
	return 0
}
