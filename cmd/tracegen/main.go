// Command tracegen synthesizes a Haggle-like contact trace (heavy-tailed
// inter-contact times, log-normal contact durations, arrival ramp) and
// writes it in the text format the rest of the toolchain reads.
//
// Usage:
//
//	tracegen [-n 20] [-horizon 17000] [-seed 1] [-o trace.txt]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		n       = flag.Int("n", 20, "number of nodes")
		horizon = flag.Float64("horizon", 17000, "trace length (s)")
		meanICT = flag.Float64("ict", 4000, "mean pairwise inter-contact time (s)")
		meanDur = flag.Float64("dur", 250, "mean contact duration (s)")
		ramp    = flag.Float64("ramp", 8000, "node arrival ramp end (s)")
		dmin    = flag.Float64("dmin", 1, "minimum contact distance (m)")
		dmax    = flag.Float64("dmax", 10, "maximum contact distance (m)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	tr := tmedb.GenerateTrace(tmedb.TraceOptions{
		N:                *n,
		Horizon:          *horizon,
		MeanInterContact: *meanICT,
		MeanContact:      *meanDur,
		RampEnd:          *ramp,
		DistMin:          *dmin,
		DistMax:          *dmax,
	}, *seed)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d nodes, %d contacts over %.0f s\n",
		tr.N, len(tr.Contacts), tr.Horizon)
}
