// Command figures regenerates every figure panel of the paper's
// evaluation section (§VII) as plain data tables: Fig. 4(a)/(b),
// Fig. 5(a)/(b), Fig. 6(a)/(b), and Fig. 7(a)/(b).
//
// Usage:
//
//	figures [-panel all|4a|4b|5a|5b|6|7a|7b] [-quick] [-seed 1]
//
// -quick trims the sweep (one source, fewer trials) for a fast preview;
// the default runs the full paper grid and takes a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	var (
		panel    = flag.String("panel", "all", "panel to regenerate: all|4a|4b|5a|5b|6|7a|7b|complexity|gap|edit")
		quick    = flag.Bool("quick", false, "single source, fewer Monte Carlo trials")
		seed     = flag.Int64("seed", 1, "trace seed")
		workers  = flag.Int("workers", 0, "worker pool size for the sweep and the solver cores (0: GOMAXPROCS); tables are identical for every value")
		doAudit  = flag.Bool("audit", false, "cross-check every planned schedule through all execution semantics; aborts on any disagreement")
		metrics  = flag.String("metrics", "", "write the aggregated JSON run report for the whole sweep to this file")
		deadline = flag.Duration("deadline", 0, "per-schedule wall-clock solve budget (e.g. 500ms); an expired budget skips the data point instead of stalling the sweep. 0 plans unbudgeted")
	)
	flag.Parse()
	if *deadline < 0 {
		fmt.Fprintf(os.Stderr, "figures: -deadline must be >= 0 (got %v)\n", *deadline)
		os.Exit(1)
	}

	cfg := tmedb.DefaultConfig()
	cfg.TraceSeed = seed2(*seed)
	cfg.Workers = *workers
	cfg.Audit = *doAudit
	cfg.Deadline = *deadline
	if *quick {
		cfg.Sources = []tmedb.NodeID{0}
		cfg.Trials = 200
	}
	if *metrics != "" {
		cfg.Obs = tmedb.NewRecorder()
	}

	want := func(p string) bool { return *panel == "all" || *panel == p }
	ran := false
	start := time.Now()

	if want("4a") {
		emit(tmedb.Fig4(cfg, tmedb.Static))
		ran = true
	}
	if want("4b") {
		emit(tmedb.Fig4(cfg, tmedb.Rayleigh))
		ran = true
	}
	if want("5a") {
		emit(tmedb.Fig5(cfg, tmedb.Static))
		ran = true
	}
	if want("5b") {
		emit(tmedb.Fig5(cfg, tmedb.Rayleigh))
		ran = true
	}
	if want("6") {
		e, d := tmedb.Fig6(cfg)
		emit(e)
		emit(d)
		ran = true
	}
	if want("7a") {
		emit(tmedb.Fig7(cfg, tmedb.Static))
		ran = true
	}
	if want("7b") {
		emit(tmedb.Fig7(cfg, tmedb.Rayleigh))
		ran = true
	}
	if want("complexity") {
		emit(tmedb.ComplexityTable(cfg))
		ran = true
	}
	if want("gap") {
		emit(tmedb.GapTable(cfg))
		ran = true
	}
	// The edit-churn panel is opt-in (not part of -panel all): it is the
	// incremental-edit perf workload, and folding it into the Fig4-7
	// sweep would shift that sweep's gated counters against the committed
	// baseline.
	if *panel == "edit" {
		emit(tmedb.EditChurnTable(cfg))
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "figures: unknown panel %q\n", *panel)
		os.Exit(1)
	}
	if *metrics != "" {
		rep := cfg.Obs.Snapshot(map[string]string{
			"command": "figures",
			"panel":   *panel,
			"seed":    fmt.Sprint(cfg.TraceSeed),
			"workers": fmt.Sprint(cfg.Workers),
			"quick":   fmt.Sprint(*quick),
		})
		f, err := os.Create(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "figures: run report written to %s\n", *metrics)
	}
	fmt.Fprintf(os.Stderr, "figures: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func seed2(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}

func emit(f tmedb.FigureResult) {
	fmt.Println(f.String())
}
