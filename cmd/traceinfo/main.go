// Command traceinfo prints the descriptive statistics of a contact
// trace: contact durations, inter-contact gaps with a power-law tail
// fit, a degree timeline, and per-node activity — the Chaintreau-style
// characterization used to validate the synthetic generator against the
// Haggle setting.
//
// Usage:
//
//	traceinfo trace.txt
//	tracegen -n 20 | traceinfo
package main

import (
	"fmt"
	"os"

	"repro/internal/haggle"
	"repro/internal/tracestats"
)

func main() {
	in := os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	tr, err := haggle.ReadAuto(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
	fmt.Print(tracestats.Analyze(tr, 24))
}
