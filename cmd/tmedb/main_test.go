package main

import (
	"strings"
	"testing"
	"time"

	"repro"
)

// validFlags returns a flagConfig mirroring the flag defaults, which
// must always validate.
func validFlags() flagConfig {
	return flagConfig{
		n: 20, src: 0, delay: 2000, trials: 1000, workers: 1,
		level: 2, auditCases: 250,
	}
}

func TestValidateFlagsDefaultsOK(t *testing.T) {
	if err := validateFlags(validFlags()); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
}

// TestValidateFlagsRejections pins the upfront validation (ISSUE 4
// satellite f): structurally bad invocations must fail with one clear
// message before any trace IO or planning starts.
func TestValidateFlagsRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flagConfig)
		wantSub string
	}{
		{"zero n", func(c *flagConfig) { c.n = 0 }, "-n"},
		{"negative n", func(c *flagConfig) { c.n = -3 }, "-n"},
		{"negative src", func(c *flagConfig) { c.src = -1 }, "-src"},
		{"zero delay", func(c *flagConfig) { c.delay = 0 }, "-delay"},
		{"negative delay", func(c *flagConfig) { c.delay = -5 }, "-delay"},
		{"negative trials", func(c *flagConfig) { c.trials = -1 }, "-trials"},
		{"negative workers", func(c *flagConfig) { c.workers = -2 }, "-workers"},
		{"zero level", func(c *flagConfig) { c.level = 0 }, "-level"},
		{"zero audit cases", func(c *flagConfig) { c.auditCases = 0 }, "-audit-cases"},
		{"negative deadline", func(c *flagConfig) { c.budget = -time.Second }, "-deadline"},
		{"ladder without deadline", func(c *flagConfig) { c.ladder = "greed,rand" }, "-ladder requires -deadline"},
		{"bad ladder rung", func(c *flagConfig) {
			c.budget = time.Second
			c.ladder = "full,bogus"
		}, "unknown rung"},
		{"deadline with targets", func(c *flagConfig) {
			c.budget = time.Second
			c.targets = "1,2"
		}, "-targets"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := validFlags()
			c.mutate(&cfg)
			err := validateFlags(cfg)
			if err == nil {
				t.Fatalf("%+v validated", cfg)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestValidateFlagsAcceptsLadderWithDeadline(t *testing.T) {
	cfg := validFlags()
	cfg.budget = 2 * time.Second
	cfg.ladder = "full, greed ,rand"
	if err := validateFlags(cfg); err != nil {
		t.Fatalf("ladder with deadline rejected: %v", err)
	}
	cfg.workers = 0 // 0 = GOMAXPROCS is a valid pool request
	cfg.trials = 0  // plan-only runs skip evaluation
	if err := validateFlags(cfg); err != nil {
		t.Fatalf("boundary values rejected: %v", err)
	}
}

func TestParseModel(t *testing.T) {
	for s, want := range map[string]tmedb.Model{
		"static": tmedb.Static, "rayleigh": tmedb.Rayleigh,
		"RICIAN": tmedb.Rician, "Nakagami": tmedb.Nakagami,
	} {
		got, err := parseModel(s)
		if err != nil || got != want {
			t.Errorf("parseModel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := parseModel("awgn"); err == nil {
		t.Error("parseModel(awgn) succeeded")
	}
}

func TestParseAlg(t *testing.T) {
	for _, s := range []string{"eedcb", "greed", "rand", "fr-eedcb", "fr-greed", "fr-rand"} {
		alg, err := parseAlg(s, 2, 1, 1, nil)
		if err != nil {
			t.Errorf("parseAlg(%q): %v", s, err)
			continue
		}
		if !strings.EqualFold(alg.Name(), s) {
			t.Errorf("parseAlg(%q).Name() = %q", s, alg.Name())
		}
	}
	if _, err := parseAlg("mst", 2, 1, 1, nil); err == nil {
		t.Error("parseAlg(mst) succeeded")
	}
}

func TestParseTargets(t *testing.T) {
	got, err := parseTargets("1, 3,5", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("parseTargets = %v", got)
	}
	if _, err := parseTargets("12", 10); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := parseTargets("1,x", 10); err == nil {
		t.Error("non-numeric target accepted")
	}
}
