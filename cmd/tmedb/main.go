// Command tmedb plans and evaluates one delay-constrained broadcast on a
// contact trace: it runs the chosen algorithm (EEDCB, FR-EEDCB, GREED,
// FR-GREED, RAND, FR-RAND), prints the relay schedule, checks the §IV
// feasibility conditions, and Monte Carlo-evaluates delivery and energy.
//
// Usage:
//
//	tmedb -alg fr-eedcb -model rayleigh [-trace t.txt] [-src 0] \
//	      [-t0 9000] [-delay 2000] [-trials 1000]
//
// Without -trace a synthetic Haggle-like trace is generated (-seed, -n).
//
// Observability: -metrics writes the machine-readable run report,
// -phases prints the phase tree with wall times and cache hit rates,
// -trace-out writes the phase tree as Chrome trace-event (catapult)
// JSON, and -pprof serves net/http/pprof plus the live report on
// /debug/vars and its Prometheus exposition on /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		algName   = flag.String("alg", "eedcb", "algorithm: eedcb|greed|rand|fr-eedcb|fr-greed|fr-rand")
		modelName = flag.String("model", "static", "channel model: static|rayleigh|rician|nakagami")
		tracePath = flag.String("trace", "", "trace file (empty: synthesize)")
		n         = flag.Int("n", 20, "nodes for the synthetic trace")
		seed      = flag.Int64("seed", 1, "seed for synthetic trace / RAND / evaluation")
		src       = flag.Int("src", 0, "source node")
		t0        = flag.Float64("t0", 9000, "broadcast release time (s)")
		delay     = flag.Float64("delay", 2000, "delay constraint (s)")
		trials    = flag.Int("trials", 1000, "Monte Carlo trials")
		workers   = flag.Int("workers", 1, "worker pool size for the solver and the Monte Carlo evaluation (0: GOMAXPROCS). Schedules are identical for every value; evaluation statistics depend on (seed, workers)")
		level     = flag.Int("level", 2, "recursive-greedy Steiner level for (FR-)EEDCB")
		outJSON   = flag.String("o", "", "write the planned schedule as JSON to this file")
		targets   = flag.String("targets", "", "comma-separated multicast targets (empty: broadcast); only (fr-)eedcb")
		verbose   = flag.Bool("v", false, "print every transmission")
		auditRun  = flag.Bool("audit", false, "run the differential execution-semantics audit over randomized cases (seeded by -seed) and exit; non-zero on any disagreement")
		auditN    = flag.Int("audit-cases", 250, "randomized cases for -audit")
		metrics   = flag.String("metrics", "", "write the JSON run report (phase tree, counters, cache hit rates, pool utilization) to this file")
		traceOut  = flag.String("trace-out", "", "write the run's phase tree as Chrome trace-event (catapult) JSON to this file, loadable in chrome://tracing or Perfetto")
		phases    = flag.Bool("phases", false, "print the phase tree and metrics summary after the run")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and the live run report (expvar \"tmedb\" on /debug/vars) on this address, e.g. localhost:6060")
		budget    = flag.Duration("deadline", 0, "total wall-clock solve budget (e.g. 2s); engages the degradation ladder, which falls from the primary planner to cheaper ones as the budget runs out. 0 plans unbudgeted with -alg")
		ladder    = flag.String("ladder", "", "comma-separated degradation ladder for -deadline (rungs: full|spt|greed|rand; empty: full,spt,greed,rand)")
	)
	flag.Parse()
	if err := validateFlags(flagConfig{
		n: *n, src: *src, delay: *delay, trials: *trials, workers: *workers,
		level: *level, auditCases: *auditN, budget: *budget, ladder: *ladder,
		targets: *targets,
	}); err != nil {
		fatal(err)
	}

	var rec *tmedb.Recorder
	if *metrics != "" || *phases || *pprofAddr != "" || *traceOut != "" {
		rec = tmedb.NewRecorder()
	}
	if *pprofAddr != "" {
		if err := rec.PublishExpvar("tmedb"); err != nil {
			fatal(err)
		}
		dbg, err := tmedb.ServeDebug(context.Background(), *pprofAddr)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "tmedb: pprof/expvar on http://%s/debug/pprof\n", dbg.Addr())
	}

	if *auditRun {
		rep := tmedb.RunAudit(*auditN, *seed)
		fmt.Print(rep)
		if !rep.Ok() {
			os.Exit(1)
		}
		return
	}

	model, err := parseModel(*modelName)
	if err != nil {
		fatal(err)
	}
	alg, err := parseAlg(*algName, *level, *seed, *workers, rec)
	if err != nil {
		fatal(err)
	}

	var trace *tmedb.Trace
	traceName := *tracePath
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		trace, err = tmedb.ReadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		trace = tmedb.GenerateTrace(tmedb.TraceOptions{N: *n}, *seed)
		traceName = fmt.Sprintf("synthetic(n=%d,seed=%d)", *n, *seed)
	}
	g := trace.ToTVEG(0, tmedb.DefaultParams(), model)
	if *src < 0 || *src >= g.N() {
		fatal(fmt.Errorf("source %d outside [0,%d)", *src, g.N()))
	}

	deadline := *t0 + *delay
	var sched tmedb.Schedule
	var tgt []tmedb.NodeID
	var outcome *tmedb.DegradeOutcome
	if *targets != "" {
		var terr error
		tgt, terr = parseTargets(*targets, g.N())
		if terr != nil {
			fatal(terr)
		}
		switch a := alg.(type) {
		case tmedb.EEDCB:
			sched, err = a.Multicast(g, tmedb.NodeID(*src), tgt, *t0, deadline)
		case tmedb.FREEDCB:
			sched, err = a.Multicast(g, tmedb.NodeID(*src), tgt, *t0, deadline)
		default:
			fatal(fmt.Errorf("-targets requires -alg eedcb or fr-eedcb"))
		}
	} else if *budget > 0 {
		rungs, lerr := tmedb.ParseLadder(*ladder)
		if lerr != nil {
			fatal(lerr)
		}
		sched, outcome, err = tmedb.SolveWithLadder(context.Background(), g, tmedb.NodeID(*src), *t0, deadline, tmedb.DegradeOptions{
			Budget: *budget, Ladder: rungs, Level: *level,
			Workers: *workers, Seed: *seed, Obs: rec,
		})
	} else {
		sched, err = alg.Schedule(g, tmedb.NodeID(*src), *t0, deadline)
	}
	var inc *tmedb.IncompleteError
	switch {
	case err == nil:
	case errors.As(err, &inc):
		fmt.Printf("warning: %v\n", inc)
	default:
		fatal(err)
	}

	algName2 := alg.Name()
	if outcome != nil {
		algName2 = outcome.Algorithm
		fmt.Printf("degradation      rung=%s budget=%v", outcome.Rung, outcome.Budget)
		if outcome.Reason != "" {
			fmt.Printf(" (%s)", outcome.Reason)
		}
		fmt.Println()
	}
	fmt.Printf("algorithm        %s (%s channel)\n", algName2, model)
	fmt.Printf("trace            %d nodes, %d contacts, horizon %.0f s\n",
		trace.N, len(trace.Contacts), trace.Horizon)
	fmt.Printf("broadcast        src=%d window=[%.0f, %.0f] s\n", *src, *t0, deadline)
	fmt.Printf("transmissions    %d\n", len(sched))
	fmt.Printf("planned energy   %.6g (normalized by γth)\n",
		sched.NormalizedCost(g.Params.GammaTh))
	if *verbose {
		for k, x := range sched {
			fmt.Printf("  tx %2d: node %2d at t=%.1f  w=%.4g\n", k, x.Relay, x.T, x.W)
		}
	}

	if len(tgt) > 0 {
		ok := true
		for _, n := range tgt {
			if p := tmedb.UninformedProb(g, sched, tmedb.NodeID(*src), n, deadline); p > g.Params.Eps*1.000001 {
				fmt.Printf("feasibility      VIOLATED: target %d residual failure %.4g > ε\n", n, p)
				ok = false
			}
		}
		if ok {
			fmt.Printf("feasibility      ok (every multicast target within ε)\n")
		}
	} else if err := tmedb.CheckFeasible(g, sched, tmedb.NodeID(*src), deadline, math.Inf(1)); err != nil {
		fmt.Printf("feasibility      VIOLATED: %v\n", err)
	} else {
		fmt.Printf("feasibility      ok (all four §IV conditions)\n")
	}

	if diffs := tmedb.AuditSchedule(g, sched, tmedb.NodeID(*src), *t0, deadline, math.Inf(1)); len(diffs) == 0 {
		fmt.Printf("audit            ok (all execution semantics agree)\n")
	} else {
		for _, d := range diffs {
			fmt.Printf("audit            MISMATCH: %s\n", d)
		}
		fatal(fmt.Errorf("execution semantics disagree on the planned schedule"))
	}

	evalSpan := rec.StartPhase("evaluate")
	evalSpan.SetInt("trials", *trials)
	res := tmedb.EvaluateParallelObs(g, sched, tmedb.NodeID(*src), *trials, *seed, *workers, rec)
	evalSpan.End()
	fmt.Printf("evaluation       %v\n", res)

	// Sample the graph's cost-cache counters once the full pipeline
	// (planning, feasibility, audit, evaluation) has exercised them.
	tmedb.RecordCacheStats(rec, g)
	report := rec.Snapshot(map[string]string{
		"algorithm": algName2,
		"model":     model.String(),
		"trace":     traceName,
	})

	if *outJSON != "" {
		meta := &tmedb.ScheduleMeta{
			Algorithm: algName2,
			Model:     model.String(),
			Seed:      *seed,
			Workers:   *workers,
			Trace:     traceName,
			Src:       *src,
			T0:        *t0,
			Deadline:  deadline,
		}
		outcome.Annotate(meta)
		if rec != nil {
			meta.PhaseMS = report.PhaseWallMS()
		}
		f, err := os.Create(*outJSON)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tmedb.WriteScheduleJSONMeta(f, sched, meta); err != nil {
			fatal(err)
		}
		fmt.Printf("schedule written to %s\n", *outJSON)
	}
	if *phases {
		fmt.Print(report.String())
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("run report written to %s\n", *metrics)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := report.WriteTrace(f); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
}

// flagConfig carries the numeric/shape flags subject to upfront
// validation, so bad invocations fail with one clear message before any
// work (trace IO, planning) starts.
type flagConfig struct {
	n          int
	src        int
	delay      float64
	trials     int
	workers    int
	level      int
	auditCases int
	budget     time.Duration
	ladder     string
	targets    string
}

// validateFlags rejects structurally invalid flag combinations.
func validateFlags(c flagConfig) error {
	if c.n <= 0 {
		return fmt.Errorf("-n must be positive (got %d)", c.n)
	}
	if c.src < 0 {
		return fmt.Errorf("-src must be >= 0 (got %d)", c.src)
	}
	if c.delay <= 0 {
		return fmt.Errorf("-delay must be positive (got %g)", c.delay)
	}
	if c.trials < 0 {
		return fmt.Errorf("-trials must be >= 0 (got %d)", c.trials)
	}
	if c.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d; 0 selects GOMAXPROCS)", c.workers)
	}
	if c.level < 1 {
		return fmt.Errorf("-level must be >= 1 (got %d)", c.level)
	}
	if c.auditCases <= 0 {
		return fmt.Errorf("-audit-cases must be positive (got %d)", c.auditCases)
	}
	if c.budget < 0 {
		return fmt.Errorf("-deadline must be >= 0 (got %v)", c.budget)
	}
	if c.ladder != "" {
		if c.budget == 0 {
			return fmt.Errorf("-ladder requires -deadline")
		}
		if _, err := tmedb.ParseLadder(c.ladder); err != nil {
			return err
		}
	}
	if c.budget > 0 && c.targets != "" {
		return fmt.Errorf("-deadline (degradation ladder) does not support -targets multicast")
	}
	return nil
}

func parseModel(s string) (tmedb.Model, error) {
	switch strings.ToLower(s) {
	case "static":
		return tmedb.Static, nil
	case "rayleigh":
		return tmedb.Rayleigh, nil
	case "rician":
		return tmedb.Rician, nil
	case "nakagami":
		return tmedb.Nakagami, nil
	}
	return 0, fmt.Errorf("unknown model %q", s)
}

func parseAlg(s string, level int, seed int64, workers int, rec *tmedb.Recorder) (tmedb.Scheduler, error) {
	switch strings.ToLower(s) {
	case "eedcb":
		return tmedb.EEDCB{Level: level, Workers: workers, Obs: rec}, nil
	case "greed":
		return tmedb.Greedy{Obs: rec}, nil
	case "rand":
		return tmedb.Random{Seed: seed, Obs: rec}, nil
	case "fr-eedcb":
		return tmedb.FREEDCB{Level: level, Workers: workers, Obs: rec}, nil
	case "fr-greed":
		return tmedb.FRGreedy{Workers: workers, Obs: rec}, nil
	case "fr-rand":
		return tmedb.FRRandom{Seed: seed, Workers: workers, Obs: rec}, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", s)
}

func parseTargets(s string, n int) ([]tmedb.NodeID, error) {
	var out []tmedb.NodeID
	for _, part := range strings.Split(s, ",") {
		var id int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &id); err != nil {
			return nil, fmt.Errorf("bad target %q", part)
		}
		if id < 0 || id >= n {
			return nil, fmt.Errorf("target %d outside [0,%d)", id, n)
		}
		out = append(out, tmedb.NodeID(id))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tmedb:", err)
	os.Exit(1)
}
