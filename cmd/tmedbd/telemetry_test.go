package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

// TestFlightFIFOEviction pins the eviction contract end to end on a
// deliberately tiny ring: after K > cap serial solves, /debug/requests
// holds exactly the last cap requests, oldest first.
func TestFlightFIFOEviction(t *testing.T) {
	cfg := defaultConfig()
	cfg.flightSize = 2
	srv := newServer(cfg)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	in := instance{alg: "greed", model: "static", n: 10, seed: 1, src: 0}
	var ids []string
	for i := 0; i < 5; i++ {
		code, sr, err := postSolve(ts.Client(), ts.URL, solveBody(in, func(q *solveRequest) { q.NoCache = true }))
		if err != nil || code != http.StatusOK {
			t.Fatalf("solve %d: code=%d err=%v", i, code, err)
		}
		ids = append(ids, sr.ReqID)
	}
	page := fetchFlight(t, ts.URL)
	if page.Cap != 2 || page.Recorded != 5 {
		t.Fatalf("flight page cap=%d recorded=%d, want 2/5", page.Cap, page.Recorded)
	}
	if len(page.Requests) != 2 {
		t.Fatalf("flight holds %d records, want 2", len(page.Requests))
	}
	for i, want := range ids[3:] {
		got := page.Requests[i]
		if got.ID != want {
			t.Errorf("slot %d holds %s, want %s (FIFO eviction of the oldest)", i, got.ID, want)
		}
		if got.Status != http.StatusOK || got.Alg != "greed" || got.Cache != "miss" {
			t.Errorf("slot %d record incomplete: %+v", i, got)
		}
	}
}

// TestFlightRecordsFailures pins that failed requests reach the flight
// recorder too, carrying the error and its status.
func TestFlightRecordsFailures(t *testing.T) {
	srv := newServer(defaultConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	body, _ := json.Marshal(solveRequest{Trace: "bogus", Src: 0, Delay: 10})
	resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	page := fetchFlight(t, ts.URL)
	if len(page.Requests) != 1 {
		t.Fatalf("flight holds %d records, want 1", len(page.Requests))
	}
	rec := page.Requests[0]
	if rec.Status != http.StatusBadRequest || rec.Err == "" {
		t.Errorf("failure record = %+v, want status 400 with error", rec)
	}
}

// TestSolveTraceExport pins ?trace=1: the response is a catapult
// trace-event array whose events mirror the solve's phase tree, with
// the minted request ID echoed in X-Request-Id.
func TestSolveTraceExport(t *testing.T) {
	srv := newServer(defaultConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	in := instance{alg: "eedcb", model: "static", n: 10, seed: 1, src: 0}
	resp, err := ts.Client().Post(ts.URL+"/solve?trace=1", "application/json",
		bytes.NewReader(solveBody(in, nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("trace response carries no X-Request-Id")
	}
	var events []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace body is not a catapult event array: %v", err)
	}
	names := map[string]bool{}
	for _, e := range events {
		if e.Ph != "X" {
			t.Errorf("event %s has ph %q, want complete event X", e.Name, e.Ph)
		}
		if e.Dur < 0 || e.Ts < 0 {
			t.Errorf("event %s has negative timing: ts=%g dur=%g", e.Name, e.Ts, e.Dur)
		}
		names[e.Name] = true
	}
	// The direct eedcb path always opens these phases (see internal/core).
	for _, want := range []string{"run", "eedcb", "dts"} {
		if !names[want] {
			t.Errorf("trace missing phase %q (got %v)", want, names)
		}
	}

	// The trace request bypassed the cache lookup but still filled it:
	// an identical plain request now hits.
	code, sr, err := postSolve(ts.Client(), ts.URL, solveBody(in, nil))
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-trace solve: code=%d err=%v", code, err)
	}
	if sr.Cache != "hit" {
		t.Errorf("post-trace repeat was a %q, want hit (trace solves fill the cache)", sr.Cache)
	}
}

// TestRequestLogging pins the structured-log schema: with -log json,
// one solve emits constant-message events (solve.received, the degrade
// rung events, solve.done) all bound to the request's req_id, and that
// req_id matches the one in the response.
func TestRequestLogging(t *testing.T) {
	cfg := defaultConfig()
	srv := newServer(cfg)
	var buf syncBuffer
	srv.log = tmedb.NewJSONLogger(&buf)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	in := instance{alg: "greed", model: "static", n: 10, seed: 3, src: 0}
	// A budgeted solve so the degradation ladder (and its rung events)
	// engages; greed is cheap enough to win its first rung.
	code, sr, err := postSolve(ts.Client(), ts.URL, solveBody(in, func(q *solveRequest) {
		q.DeadlineMS = 60_000
	}))
	if err != nil || code != http.StatusOK {
		t.Fatalf("solve: code=%d err=%v", code, err)
	}
	if sr.ReqID == "" {
		t.Fatal("response carries no req_id")
	}

	var msgs []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if ev["req_id"] != sr.ReqID {
			t.Errorf("log line %q has req_id %v, want %s", ev["msg"], ev["req_id"], sr.ReqID)
		}
		msgs = append(msgs, ev["msg"].(string))
	}
	joined := strings.Join(msgs, ",")
	for _, want := range []string{"solve.received", "degrade.rung_answered", "solve.done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("log stream missing event %q (got %s)", want, joined)
		}
	}
	// Events arrive in request order: received before done.
	if len(msgs) < 2 || msgs[0] != "solve.received" || msgs[len(msgs)-1] != "solve.done" {
		t.Errorf("event order = %v, want solve.received first and solve.done last", msgs)
	}

	// A failed request logs solve.failed with the taxonomy kind.
	buf.Reset()
	body, _ := json.Marshal(solveRequest{Trace: "bogus", Src: 0, Delay: 10})
	resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), `"msg":"solve.failed"`) ||
		!strings.Contains(buf.String(), `"kind":"bad_request"`) {
		t.Errorf("failed solve log missing solve.failed/bad_request: %s", buf.String())
	}
}

// TestMetricsEndpoint pins the /metrics exposition content after load:
// request counters, the latency summary with quantiles, and valid
// format throughout.
func TestMetricsEndpoint(t *testing.T) {
	srv := newServer(defaultConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	in := instance{alg: "greed", model: "static", n: 10, seed: 1, src: 0}
	for i := 0; i < 3; i++ {
		if code, _, err := postSolve(ts.Client(), ts.URL, solveBody(in, nil)); err != nil || code != http.StatusOK {
			t.Fatalf("solve %d: code=%d err=%v", i, code, err)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q, want text exposition", ct)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := out.String()
	if err := validateExposition(body); err != nil {
		t.Error(err)
	}
	for _, want := range []string{
		"tmedbd_requests 3",
		"tmedbd_solved 1",
		"tmedbd_cache_hits 2",
		`tmedbd_latency_ms{quantile="0.5"}`,
		"tmedbd_latency_ms_count 3",
		// Only the cold solve reached admission; the two cache hits
		// answered before the queue.
		"tmedbd_queue_wait_ms_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the HTTP handler goroutine
// writes log lines while the test goroutine reads them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}
