package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
)

// solveRequest is the JSON body of POST /solve. Exactly one trace source
// — inline text, a server-side file reference, or a synthetic generator
// ref — must be set.
type solveRequest struct {
	// Alg selects the planner: eedcb|greed|rand|fr-eedcb|fr-greed|fr-rand
	// (default fr-eedcb).
	Alg string `json:"alg,omitempty"`
	// Model selects the channel model: static|rayleigh|rician|nakagami
	// (default static).
	Model string `json:"model,omitempty"`

	// Trace is an inline contact trace (any format ReadTrace accepts,
	// e.g. the native "# haggle-trace v1" text).
	Trace string `json:"trace,omitempty"`
	// TraceFile references a trace file under the daemon's -traces root.
	TraceFile string `json:"trace_file,omitempty"`
	// Synthetic asks for the deterministic synthetic Haggle-like trace.
	Synthetic *syntheticRef `json:"synthetic,omitempty"`

	// Src is the broadcast source node.
	Src int `json:"src"`
	// T0 is the broadcast release time (seconds into the trace).
	T0 float64 `json:"t0"`
	// Delay is the delay constraint T in seconds; the absolute deadline
	// is T0+Delay.
	Delay float64 `json:"delay"`
	// Eps overrides the residual failure bound ε (0 = the §VII default).
	Eps float64 `json:"eps,omitempty"`
	// Level is the recursive-greedy Steiner level of (FR-)EEDCB
	// (default 2).
	Level int `json:"level,omitempty"`
	// Seed drives the RAND planners and is part of the cache key.
	Seed int64 `json:"seed,omitempty"`
	// Workers bounds the solver's worker pools for this request, capped
	// by the daemon's -workers (0 = the daemon default). Schedules are
	// identical for every value.
	Workers int `json:"workers,omitempty"`
	// DeadlineMS is the per-request solve budget in milliseconds. A
	// positive value engages the degradation ladder, which falls to
	// cheaper planners as the budget runs out; 0 plans unbudgeted.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Ladder overrides the degradation ladder for budgeted solves
	// ("full,spt,greed,rand" rung names).
	Ladder string `json:"ladder,omitempty"`
	// Report asks for the per-request obs run report in the response.
	Report bool `json:"report,omitempty"`
	// NoCache bypasses the schedule cache for this request (both lookup
	// and fill).
	NoCache bool `json:"no_cache,omitempty"`
}

// syntheticRef names a deterministic synthetic trace: GenerateTrace with
// default shape parameters, N nodes, and the given seed.
type syntheticRef struct {
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
}

// solveResponse is the JSON body of a successful solve.
type solveResponse struct {
	// ReqID is the daemon-minted request ID; the same ID tags every
	// structured log line of this request and its flight-recorder entry,
	// so a response can be joined to its server-side telemetry.
	ReqID string `json:"req_id,omitempty"`
	// Schedule is the standard schedule envelope ({version, meta,
	// transmissions}) — the same shape tmedb -o writes and
	// ReadScheduleJSONMeta parses.
	Schedule json.RawMessage `json:"schedule"`
	// Cache is "hit" or "miss".
	Cache string `json:"cache"`
	// ShedRungs counts the degradation-ladder rungs admission control
	// actually removed for this request because the queue was deep
	// (0 = unshed). A shed level at or below the requested planner's
	// best rung removes nothing and reports 0.
	ShedRungs int `json:"shed_rungs,omitempty"`
	// Rung names the degradation-ladder rung that produced the schedule
	// (budgeted or shed solves only).
	Rung string `json:"rung,omitempty"`
	// DegradeReason explains why earlier rungs were abandoned.
	DegradeReason string `json:"degrade_reason,omitempty"`
	// Incomplete lists nodes the planner could not cover within the
	// delay window (the schedule is still valid for the covered nodes).
	Incomplete []int `json:"incomplete,omitempty"`
	// Report is the per-request obs run report, when requested.
	Report *tmedb.RunReport `json:"report,omitempty"`
	// Edit summarizes the edit reconciliation (POST /edit only).
	Edit *editSummary `json:"edit,omitempty"`
}

// editRequest is the JSON body of POST /edit: a solve request plus the
// full edit sequence (from the base trace) to apply before solving. The
// sequence is the complete delta, not an increment — the daemon reuses
// a live instance when the sequence extends the one already applied,
// and rebuilds from the base trace otherwise, so the answer never
// depends on instance state.
type editRequest struct {
	solveRequest
	// Edits is the full edit sequence from the base trace, in order.
	Edits []editSpec `json:"edits"`
}

// editSpec is one edit operation.
type editSpec struct {
	// Op is "add", "remove", or "retime".
	Op string `json:"op"`
	// I, J name the edge's endpoints.
	I int `json:"i"`
	J int `json:"j"`
	// Start/End delimit the contact window: the interval added or
	// removed, or the exact window of the contact a retime moves.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Dist is the contact distance in meters (add only).
	Dist float64 `json:"dist,omitempty"`
	// ToStart/ToEnd is the retime target window.
	ToStart float64 `json:"to_start,omitempty"`
	ToEnd   float64 `json:"to_end,omitempty"`
}

func (e *editSpec) validate(k int) error {
	switch e.Op {
	case "add":
		if e.Dist <= 0 {
			return fmt.Errorf("edits[%d]: add needs dist > 0 (got %g)", k, e.Dist)
		}
	case "remove":
	case "retime":
		if e.ToStart >= e.ToEnd {
			return fmt.Errorf("edits[%d]: retime target [%g,%g) is empty", k, e.ToStart, e.ToEnd)
		}
	default:
		return fmt.Errorf("edits[%d]: unknown op %q", k, e.Op)
	}
	if e.I < 0 || e.J < 0 || e.I == e.J {
		return fmt.Errorf("edits[%d]: bad pair (%d,%d)", k, e.I, e.J)
	}
	if e.Start >= e.End {
		return fmt.Errorf("edits[%d]: window [%g,%g) is empty", k, e.Start, e.End)
	}
	return nil
}

// apply runs the edit against a live graph, reporting whether the graph
// actually changed (no-op removals and identity retimes do not).
func (e *editSpec) apply(g *tmedb.Graph) (bool, error) {
	i, j := tmedb.NodeID(e.I), tmedb.NodeID(e.J)
	iv := tmedb.Interval{Start: e.Start, End: e.End}
	switch e.Op {
	case "add":
		g.AddContact(i, j, iv, e.Dist)
		return true, nil
	case "remove":
		return g.RemoveContact(i, j, iv), nil
	default: // "retime" — validate() bounds the op set
		return g.RetimeChannel(i, j, iv, tmedb.Interval{Start: e.ToStart, End: e.ToEnd})
	}
}

func (r *editRequest) validate() error {
	if err := r.solveRequest.validate(); err != nil {
		return err
	}
	if len(r.Edits) == 0 {
		return fmt.Errorf("edits must be non-empty (use /solve for plain solves)")
	}
	for k := range r.Edits {
		if err := r.Edits[k].validate(k); err != nil {
			return err
		}
	}
	return nil
}

// editsHash fingerprints an edit sequence for the schedule-cache key.
func editsHash(edits []editSpec) uint64 {
	h := fnv.New64a()
	for _, e := range edits {
		fmt.Fprintf(h, "%s|%d|%d|%x|%x|%x|%x|%x\n",
			e.Op, e.I, e.J, e.Start, e.End, e.Dist, e.ToStart, e.ToEnd)
	}
	return h.Sum64()
}

// editSummary reports what POST /edit did to the live instance before
// solving.
type editSummary struct {
	// Ops is the length of the requested edit sequence.
	Ops int `json:"ops"`
	// Reused counts leading ops already applied to the live instance
	// (the incremental prefix); Applied counts the ops this request
	// applied; Noops counts applied ops that did not change the graph.
	Reused  int `json:"reused"`
	Applied int `json:"applied"`
	Noops   int `json:"noops"`
	// Rebuilt reports that the instance was reconstructed from the base
	// trace because the sequence did not extend the live one.
	Rebuilt bool `json:"rebuilt,omitempty"`
	// Version is the graph version after the edits.
	Version uint64 `json:"version"`
}

// errorResponse is the JSON body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

func (r *solveRequest) validate() error {
	sources := 0
	if r.Trace != "" {
		sources++
	}
	if r.TraceFile != "" {
		sources++
	}
	if r.Synthetic != nil {
		sources++
	}
	if sources != 1 {
		return fmt.Errorf("exactly one of trace, trace_file, synthetic required (got %d)", sources)
	}
	if r.Synthetic != nil && r.Synthetic.N <= 0 {
		return fmt.Errorf("synthetic.n must be positive (got %d)", r.Synthetic.N)
	}
	if r.Src < 0 {
		return fmt.Errorf("src must be >= 0 (got %d)", r.Src)
	}
	if r.Delay <= 0 {
		return fmt.Errorf("delay must be positive (got %g)", r.Delay)
	}
	if r.Eps < 0 || r.Eps >= 1 {
		return fmt.Errorf("eps must be in [0, 1) (got %g)", r.Eps)
	}
	if r.Level < 0 {
		return fmt.Errorf("level must be >= 0 (got %d)", r.Level)
	}
	if r.Workers < 0 {
		return fmt.Errorf("workers must be >= 0 (got %d)", r.Workers)
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("deadline_ms must be >= 0 (got %d)", r.DeadlineMS)
	}
	if r.Ladder != "" {
		if _, err := tmedb.ParseLadder(r.Ladder); err != nil {
			return err
		}
	}
	if _, err := parseModel(r.model()); err != nil {
		return err
	}
	if !validAlg[r.alg()] {
		return fmt.Errorf("unknown alg %q", r.alg())
	}
	return nil
}

func (r *solveRequest) alg() string {
	if r.Alg == "" {
		return "fr-eedcb"
	}
	return strings.ToLower(r.Alg)
}

func (r *solveRequest) model() string {
	if r.Model == "" {
		return "static"
	}
	return strings.ToLower(r.Model)
}

func (r *solveRequest) level() int {
	if r.Level == 0 {
		return 2
	}
	return r.Level
}

func (r *solveRequest) budget() time.Duration {
	return time.Duration(r.DeadlineMS) * time.Millisecond
}

var validAlg = map[string]bool{
	"eedcb": true, "greed": true, "rand": true,
	"fr-eedcb": true, "fr-greed": true, "fr-rand": true,
}

func parseModel(s string) (tmedb.Model, error) {
	switch s {
	case "static":
		return tmedb.Static, nil
	case "rayleigh":
		return tmedb.Rayleigh, nil
	case "rician":
		return tmedb.Rician, nil
	case "nakagami":
		return tmedb.Nakagami, nil
	}
	return 0, fmt.Errorf("unknown model %q", s)
}

// resolveTrace materializes the request's trace source. File references
// are confined to the daemon's trace root: a daemon without one rejects
// them, and paths may not escape it.
func (s *server) resolveTrace(r *solveRequest) (*tmedb.Trace, string, error) {
	switch {
	case r.Trace != "":
		tr, err := tmedb.ReadTrace(strings.NewReader(r.Trace))
		if err != nil {
			return nil, "", err
		}
		return tr, "inline", nil
	case r.Synthetic != nil:
		tr := tmedb.GenerateTrace(tmedb.TraceOptions{N: r.Synthetic.N}, r.Synthetic.Seed)
		return tr, fmt.Sprintf("synthetic(n=%d,seed=%d)", r.Synthetic.N, r.Synthetic.Seed), nil
	default:
		if s.cfg.traceDir == "" {
			return nil, "", fmt.Errorf("trace_file refs disabled (daemon started without -traces)")
		}
		rel := filepath.Clean(r.TraceFile)
		if filepath.IsAbs(rel) || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return nil, "", fmt.Errorf("trace_file %q escapes the trace root", r.TraceFile)
		}
		path := filepath.Join(s.cfg.traceDir, rel)
		f, err := os.Open(path)
		if err != nil {
			return nil, "", fmt.Errorf("trace_file: %w", err)
		}
		defer f.Close()
		tr, err := tmedb.ReadTrace(f)
		if err != nil {
			return nil, "", fmt.Errorf("trace_file %q: %w", r.TraceFile, err)
		}
		return tr, rel, nil
	}
}
