package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/lru"
)

// config tunes one daemon instance.
type config struct {
	// addr is the listen address of the solve API.
	addr string
	// debugAddr, when non-empty, serves pprof + expvar there.
	debugAddr string
	// traceDir is the root for trace_file references ("" disables them).
	traceDir string
	// workers caps the per-solve worker pools (0 = GOMAXPROCS); a
	// request may ask for fewer, never more.
	workers int
	// maxConcurrent bounds the solves running at once.
	maxConcurrent int
	// maxQueue bounds the requests waiting for a solve slot; beyond it
	// the daemon answers 503 (the backstop behind rung shedding).
	maxQueue int
	// cacheSize is the schedule-cache capacity in entries.
	cacheSize int
	// maxBody bounds the request body (inline traces can be large).
	maxBody int64
	// logFormat selects request-scoped structured logging: "json", "text",
	// or "" (disabled — the zero-allocation nil logger).
	logFormat string
	// flightSize is the flight-recorder ring capacity (0 = default 256).
	flightSize int
}

func defaultConfig() config {
	return config{
		addr:          "localhost:8723",
		workers:       1,
		maxConcurrent: 4,
		maxQueue:      16,
		cacheSize:     256,
		maxBody:       64 << 20,
	}
}

// cacheKey identifies a solve by everything that determines its
// full-quality schedule: the trace content (not the instance — the same
// trace uploaded twice hits), the broadcast instance (src, window, ε),
// and the planner (alg, model, level, seed). Workers is deliberately
// absent: schedules are identical for every pool size.
//
// The trace is identified by its 64-bit FNV-1a content hash plus a
// structural fingerprint (node count, horizon, contact count): the hash
// alone is only statistically collision-free (see the Trace.Hash
// collision note), and a collision here would silently serve another
// trace's schedule, so wrong-answer collisions additionally require two
// traces that agree on shape.
type cacheKey struct {
	traceHash     uint64
	traceN        int
	traceHorizon  float64
	traceContacts int
	src           int
	t0, delay     float64
	eps           float64
	model         string
	alg           string
	level         int
	seed          int64
	// edits fingerprints the /edit request's edit sequence (0 for plain
	// /solve): the same base trace under different deltas is a different
	// graph and must never share a cached schedule.
	edits uint64
}

// cacheEntry is one cached full-quality solve. The schedule and meta are
// shared read-only with every response that hits.
type cacheEntry struct {
	sched      tmedb.Schedule
	meta       *tmedb.ScheduleMeta
	incomplete []int
}

// server is one daemon instance: the admission-controlled compute tier
// in front of the solver stack, the schedule cache, and the fleet
// recorder backing /debug/vars.
type server struct {
	cfg   config
	cache *lru.Cache[cacheKey, cacheEntry]
	// sem holds one token per running solve.
	sem chan struct{}
	// waiting counts requests blocked on sem — the queue depth driving
	// the shedding policy.
	waiting atomic.Int64
	active  atomic.Int64
	// proc is the process-wide fleet recorder (expvar "tmedbd"); every
	// request also gets its own per-request recorder when it asks for a
	// report.
	proc *tmedb.Recorder
	// log is the structured event sink; nil (the default) disables
	// logging at zero cost. Each request derives a child logger bound to
	// its req_id and threads it through the solve via context.
	log *tmedb.Logger
	// flight is the last-N-requests ring served at /debug/requests.
	flight *tmedb.Flight
	// lat and qwait are the rolling-window SLO distributions behind the
	// /metrics summaries: end-to-end solve latency and time spent queued
	// for a slot, both in milliseconds.
	lat, qwait *tmedb.Rolling
	// instances holds the live edited graphs behind POST /edit, keyed by
	// everything that determines the pre-edit graph (base trace, model,
	// ε). Instances are an optimization, never a correctness dependency:
	// each /edit request carries its full edit sequence from the base
	// trace, so an evicted or diverged instance just costs that request a
	// rebuild. instMu guards the registry itself; each instance has its
	// own lock for edits and the solves answering them.
	instMu    sync.Mutex
	instances *lru.Cache[instanceKey, *editInstance]
}

// instanceKey identifies one live editable graph: the base trace (hash
// plus structural fingerprint, as in cacheKey) and the graph-shaping
// solve parameters. Planner fields are deliberately absent — every
// planner solves the same edited graph.
type instanceKey struct {
	traceHash     uint64
	traceN        int
	traceHorizon  float64
	traceContacts int
	model         string
	eps           float64
}

// editInstance is one live edited graph plus the edit sequence applied
// to it. mu serializes edits with the solves responding to them: a
// /edit response must answer exactly the state its request's sequence
// produced, not a later concurrent edit's.
type editInstance struct {
	mu      sync.Mutex
	g       *tmedb.Graph
	applied []editSpec
}

// editInstanceCap bounds the live-instance registry.
const editInstanceCap = 32

func newServer(cfg config) *server {
	if cfg.maxConcurrent <= 0 {
		cfg.maxConcurrent = 1
	}
	if cfg.maxQueue <= 0 {
		cfg.maxQueue = 1
	}
	if cfg.cacheSize <= 0 {
		cfg.cacheSize = 1
	}
	if cfg.maxBody <= 0 {
		cfg.maxBody = 64 << 20
	}
	srv := &server{
		cfg:       cfg,
		cache:     lru.New[cacheKey, cacheEntry](cfg.cacheSize),
		sem:       make(chan struct{}, cfg.maxConcurrent),
		proc:      tmedb.NewRecorder(),
		flight:    tmedb.NewFlight(cfg.flightSize),
		instances: lru.New[instanceKey, *editInstance](editInstanceCap),
	}
	srv.lat = srv.proc.Rolling("tmedbd.latency_ms", 0)
	srv.qwait = srv.proc.Rolling("tmedbd.queue_wait_ms", 0)
	return srv
}

// handler mounts the API: POST /solve, POST /edit (solve-with-delta),
// GET /healthz, plus the telemetry
// reads — the Prometheus exposition of the fleet recorder at /metrics
// and the flight recorder at /debug/requests. pprof/expvar live on
// their own listener (see config.debugAddr), not here.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/edit", s.handleEdit)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.proc.PromHandler("tmedbd"))
	mux.Handle("/debug/requests", s.flight)
	return mux
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":  "ok",
		"active":  s.active.Load(),
		"waiting": s.waiting.Load(),
	})
}

var errQueueFull = errors.New("queue full")

// admit blocks until a solve slot frees up or ctx dies. The returned
// shed level is the ladder starting rung admission control applies to
// this request: it grows with the queue depth observed at arrival, so an
// overloaded daemon degrades answer quality instead of erroring. A free
// slot admits immediately and sheds nothing — simultaneous arrivals on
// an idle daemon must not observe each other as queue depth and shed (or
// 503) while slots are free. Only a queue at maxQueue is rejected
// outright.
func (s *server) admit(ctx context.Context) (release func(), shed int, err error) {
	select {
	case s.sem <- struct{}{}:
		return s.acquired(), 0, nil
	default:
	}
	depth := int(s.waiting.Add(1) - 1)
	defer func() {
		s.waiting.Add(-1)
		s.proc.Gauge("tmedbd.queue.waiting").Set(float64(s.waiting.Load()))
	}()
	if depth >= s.cfg.maxQueue {
		s.proc.Counter("tmedbd.queue.rejected").Inc()
		return nil, 0, errQueueFull
	}
	shed = s.shedLevel(depth)
	select {
	case s.sem <- struct{}{}:
		return s.acquired(), shed, nil
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// acquired records a newly taken solve slot and returns its release.
func (s *server) acquired() func() {
	s.proc.Gauge("tmedbd.active").Set(float64(s.active.Add(1)))
	return func() {
		s.proc.Gauge("tmedbd.active").Set(float64(s.active.Add(-1)))
		<-s.sem
	}
}

// shedLevel maps the queue depth at arrival to a ladder starting rung:
// an empty queue sheds nothing, a queue at capacity starts at the rung
// of last resort, linear in between.
func (s *server) shedLevel(depth int) int {
	if depth <= 0 {
		return 0
	}
	level := depth * int(tmedb.RungRand+1) / s.cfg.maxQueue
	if max := int(tmedb.RungRand); level > max {
		return max
	}
	return level
}

// reqState is one request's telemetry: what the handler learned about
// the request as it progressed, shared between the solve path and the
// completion hooks (flight record, structured events).
type reqState struct {
	id         string
	alg, model string
	trace      string
	src        int
	t0, delay  float64
	rung       string
	shedRungs  int
	cache      string
	err        error
	phaseMS    map[string]float64
}

func (st *reqState) errString() string {
	if st.err == nil {
		return ""
	}
	return st.err.Error()
}

// statusWriter captures the response status and fires onFirst once,
// immediately before the first header/body write reaches the client —
// the hook that publishes the flight record before the response, so a
// client that has read its answer can already see the request at
// /debug/requests.
type statusWriter struct {
	http.ResponseWriter
	code    int
	onFirst func(code int)
}

func (w *statusWriter) WriteHeader(code int) {
	w.first(code)
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.first(http.StatusOK)
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) first(code int) {
	if w.code != 0 {
		return
	}
	w.code = code
	if w.onFirst != nil {
		w.onFirst(code)
	}
}

// errKind is the error-taxonomy label logged with failed requests.
func errKind(status int) string {
	switch status {
	case statusClientClosedRequest:
		return "cancelled"
	case http.StatusGatewayTimeout:
		return "budget"
	case http.StatusServiceUnavailable:
		return "overload"
	case http.StatusBadRequest:
		return "bad_request"
	default:
		return "internal"
	}
}

// handleSolve is the telemetry envelope around one solve: it mints the
// request ID, binds it to the request-scoped logger threaded through
// the solver via context, and on completion records the flight entry,
// observes the latency distribution, and emits the solve.done /
// solve.failed event — all tagged with the same req_id.
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	s.proc.Counter("tmedbd.requests").Inc()
	start := time.Now()
	st := &reqState{id: tmedb.NewRequestID()}
	lg := s.log.With(tmedb.LogStr("req_id", st.id))
	sw := &statusWriter{ResponseWriter: w}
	sw.onFirst = func(code int) {
		s.flight.Record(tmedb.RequestRecord{
			ID:         st.id,
			Start:      start,
			DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
			Status:     code,
			Alg:        st.alg,
			Model:      st.model,
			Trace:      st.trace,
			Src:        st.src,
			T0:         st.t0,
			Delay:      st.delay,
			Rung:       st.rung,
			ShedRungs:  st.shedRungs,
			Cache:      st.cache,
			Err:        st.errString(),
			PhaseMS:    st.phaseMS,
		})
	}
	s.serveSolve(sw, r.WithContext(tmedb.WithLogger(r.Context(), lg)), st)
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	s.lat.Observe(ms)
	if st.err != nil {
		lg.Error("solve.failed", st.err,
			tmedb.LogInt("status", sw.code),
			tmedb.LogStr("kind", errKind(sw.code)),
			tmedb.LogF64("ms", ms))
	} else if lg.Enabled() {
		lg.Event("solve.done",
			tmedb.LogInt("status", sw.code),
			tmedb.LogStr("cache", st.cache),
			tmedb.LogStr("rung", st.rung),
			tmedb.LogInt("shed_rungs", st.shedRungs),
			tmedb.LogF64("ms", ms))
	}
}

// serveSolve is the solve path proper: decode, validate, cache, admit,
// plan, respond — recording what it learns into st as it goes.
func (s *server) serveSolve(w http.ResponseWriter, r *http.Request, st *reqState) {
	lg := tmedb.LoggerFrom(r.Context())
	var req solveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(st, w, http.StatusBadRequest, err)
		return
	}
	if err := req.validate(); err != nil {
		s.fail(st, w, http.StatusBadRequest, err)
		return
	}
	tr, traceName, err := s.resolveTrace(&req)
	if err != nil {
		s.fail(st, w, http.StatusBadRequest, err)
		return
	}
	st.alg, st.model, st.trace = req.alg(), req.model(), traceName
	st.src, st.t0, st.delay = req.Src, req.T0, req.Delay
	if lg.Enabled() {
		lg.Event("solve.received",
			tmedb.LogStr("alg", st.alg),
			tmedb.LogStr("model", st.model),
			tmedb.LogStr("trace", traceName),
			tmedb.LogInt("src", req.Src),
			tmedb.LogF64("t0", req.T0),
			tmedb.LogF64("delay", req.Delay))
	}
	if req.Src >= tr.N {
		s.fail(st, w, http.StatusBadRequest, fmt.Errorf("src %d outside [0,%d)", req.Src, tr.N))
		return
	}
	if req.T0 < 0 || req.T0+req.Delay > tr.Horizon {
		s.fail(st, w, http.StatusBadRequest,
			fmt.Errorf("window [%g,%g] outside trace horizon [0,%g]", req.T0, req.T0+req.Delay, tr.Horizon))
		return
	}
	// ?trace=1 asks for the catapult trace of this solve instead of the
	// schedule envelope: it forces a per-request recorder and bypasses
	// the cache lookup (a cache hit plans nothing, so it has no trace).
	traceReq := r.URL.Query().Get("trace") == "1"

	key := cacheKey{
		traceHash:     tmedb.TraceHash(tr),
		traceN:        tr.N,
		traceHorizon:  tr.Horizon,
		traceContacts: len(tr.Contacts),
		src:           req.Src,
		t0:            req.T0,
		delay:         req.Delay,
		eps:           req.Eps,
		model:         req.model(),
		alg:           req.alg(),
		level:         req.level(),
		seed:          req.Seed,
	}
	st.cache = "miss"
	if !req.NoCache && !traceReq {
		if e, ok := s.cache.Get(key); ok {
			s.proc.Counter("tmedbd.cache.hits").Inc()
			st.cache = "hit"
			if lg.Enabled() {
				lg.Event("solve.cache_hit")
			}
			s.writeSolve(st, w, solveResponse{ReqID: st.id, Cache: "hit"}, e.sched, e.meta, e.incomplete)
			return
		}
		s.proc.Counter("tmedbd.cache.misses").Inc()
	}

	qStart := time.Now()
	release, shed, err := s.admit(r.Context())
	s.qwait.Observe(float64(time.Since(qStart)) / float64(time.Millisecond))
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			s.fail(st, w, http.StatusServiceUnavailable, err)
		} else {
			// The client went away while queued; nobody reads the body,
			// but close out the request cleanly.
			s.proc.Counter("tmedbd.cancelled").Inc()
			st.err = err
			writeError(w, statusClientClosedRequest, err)
		}
		return
	}
	defer release()
	if shed > 0 && lg.Enabled() {
		lg.Event("solve.shed", tmedb.LogInt("level", shed))
	}

	var rec *tmedb.Recorder
	if req.Report || traceReq {
		rec = tmedb.NewRecorder()
	}
	sched, outcome, shedRungs, incomplete, err := s.solve(r.Context(), &req, tr, shed, rec)
	st.shedRungs = shedRungs
	if shedRungs > 0 {
		s.proc.Counter("tmedbd.shed.requests").Inc()
		s.proc.Counter("tmedbd.shed.rungs").Add(int64(shedRungs))
	}
	if err != nil {
		switch {
		case errors.Is(err, tmedb.ErrBudgetExceeded):
			s.fail(st, w, http.StatusGatewayTimeout, err)
		case errors.Is(err, tmedb.ErrCancelled):
			s.proc.Counter("tmedbd.cancelled").Inc()
			st.err = err
			writeError(w, statusClientClosedRequest, err)
		default:
			s.fail(st, w, http.StatusInternalServerError, err)
		}
		return
	}
	s.proc.Counter("tmedbd.solved").Inc()

	meta := &tmedb.ScheduleMeta{
		Algorithm: req.alg(),
		Model:     req.model(),
		Seed:      req.Seed,
		Trace:     traceName,
		Src:       req.Src,
		T0:        req.T0,
		Deadline:  req.T0 + req.Delay,
	}
	outcome.Annotate(meta)

	resp := solveResponse{ReqID: st.id, Cache: "miss", ShedRungs: shedRungs}
	if outcome != nil {
		resp.Rung = outcome.Rung.String()
		resp.DegradeReason = outcome.Reason
		st.rung = resp.Rung
	}
	var report *tmedb.RunReport
	if rec != nil {
		rp := rec.Snapshot(map[string]string{
			"algorithm": meta.Algorithm,
			"model":     meta.Model,
			"trace":     traceName,
		})
		report = &rp
		meta.PhaseMS = rp.PhaseWallMS()
		st.phaseMS = meta.PhaseMS
		if req.Report {
			resp.Report = report
		}
	}

	// Only direct-path results enter the cache: nothing shed and no
	// degradation ladder engaged (outcome == nil), so the cached bytes
	// are exactly what an unbudgeted facade solve of the key would
	// produce. Ladder solves never fill — which rung answers depends on
	// the request's budget and ladder, neither of which is in the key,
	// so even a clean first-rung win (e.g. a request-supplied
	// ladder:"rand" under the default alg) may be a degraded answer for
	// the key's planner.
	if !req.NoCache && outcome == nil {
		s.cache.Put(key, cacheEntry{sched: sched, meta: meta, incomplete: incomplete})
	}
	if traceReq {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Request-Id", st.id)
		if err := report.WriteTrace(w); err != nil {
			st.err = err
		}
		return
	}
	s.writeSolve(st, w, resp, sched, meta, incomplete)
}

// handleEdit is the telemetry envelope around one solve-with-delta:
// the same request-ID minting, flight recording, and latency accounting
// as handleSolve, under the edit.* event names and counters.
func (s *server) handleEdit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	s.proc.Counter("tmedbd.edit.requests").Inc()
	start := time.Now()
	st := &reqState{id: tmedb.NewRequestID()}
	lg := s.log.With(tmedb.LogStr("req_id", st.id))
	sw := &statusWriter{ResponseWriter: w}
	sw.onFirst = func(code int) {
		s.flight.Record(tmedb.RequestRecord{
			ID:         st.id,
			Start:      start,
			DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
			Status:     code,
			Alg:        st.alg,
			Model:      st.model,
			Trace:      st.trace,
			Src:        st.src,
			T0:         st.t0,
			Delay:      st.delay,
			Rung:       st.rung,
			ShedRungs:  st.shedRungs,
			Cache:      st.cache,
			Err:        st.errString(),
			PhaseMS:    st.phaseMS,
		})
	}
	s.serveEdit(sw, r.WithContext(tmedb.WithLogger(r.Context(), lg)), st)
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	s.lat.Observe(ms)
	if st.err != nil {
		lg.Error("edit.failed", st.err,
			tmedb.LogInt("status", sw.code),
			tmedb.LogStr("kind", errKind(sw.code)),
			tmedb.LogF64("ms", ms))
	} else if lg.Enabled() {
		lg.Event("edit.done",
			tmedb.LogInt("status", sw.code),
			tmedb.LogStr("cache", st.cache),
			tmedb.LogStr("rung", st.rung),
			tmedb.LogInt("shed_rungs", st.shedRungs),
			tmedb.LogF64("ms", ms))
	}
}

// serveEdit is the solve-with-delta path: resolve the base trace,
// reconcile the live instance with the request's edit sequence, apply
// the missing suffix (the incremental path — the edited versions'
// DTS/auxgraph cores derive from their memoized ancestors), and solve
// the patched graph under the same cache, admission, and ladder
// machinery as /solve.
func (s *server) serveEdit(w http.ResponseWriter, r *http.Request, st *reqState) {
	lg := tmedb.LoggerFrom(r.Context())
	var req editRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(st, w, http.StatusBadRequest, err)
		return
	}
	if err := req.validate(); err != nil {
		s.fail(st, w, http.StatusBadRequest, err)
		return
	}
	tr, traceName, err := s.resolveTrace(&req.solveRequest)
	if err != nil {
		s.fail(st, w, http.StatusBadRequest, err)
		return
	}
	st.alg, st.model, st.trace = req.alg(), req.model(), traceName
	st.src, st.t0, st.delay = req.Src, req.T0, req.Delay
	if lg.Enabled() {
		lg.Event("edit.received",
			tmedb.LogStr("alg", st.alg),
			tmedb.LogStr("model", st.model),
			tmedb.LogStr("trace", traceName),
			tmedb.LogInt("edits", len(req.Edits)),
			tmedb.LogInt("src", req.Src),
			tmedb.LogF64("t0", req.T0),
			tmedb.LogF64("delay", req.Delay))
	}
	if req.Src >= tr.N {
		s.fail(st, w, http.StatusBadRequest, fmt.Errorf("src %d outside [0,%d)", req.Src, tr.N))
		return
	}
	if req.T0 < 0 || req.T0+req.Delay > tr.Horizon {
		s.fail(st, w, http.StatusBadRequest,
			fmt.Errorf("window [%g,%g] outside trace horizon [0,%g]", req.T0, req.T0+req.Delay, tr.Horizon))
		return
	}
	for k := range req.Edits {
		if e := &req.Edits[k]; e.I >= tr.N || e.J >= tr.N {
			s.fail(st, w, http.StatusBadRequest,
				fmt.Errorf("edits[%d]: pair (%d,%d) outside [0,%d)", k, e.I, e.J, tr.N))
			return
		}
	}
	model, err := parseModel(req.model())
	if err != nil {
		s.fail(st, w, http.StatusBadRequest, err)
		return
	}
	traceReq := r.URL.Query().Get("trace") == "1"
	var rec *tmedb.Recorder
	if req.Report || traceReq {
		rec = tmedb.NewRecorder()
	}

	// The instance lock covers reconcile, apply, and solve: a response
	// answers exactly the graph state its edit sequence produced, never a
	// concurrent request's later edits.
	inst := s.instance(instanceKey{
		traceHash:     tmedb.TraceHash(tr),
		traceN:        tr.N,
		traceHorizon:  tr.Horizon,
		traceContacts: len(tr.Contacts),
		model:         req.model(),
		eps:           req.Eps,
	})
	inst.mu.Lock()
	defer inst.mu.Unlock()
	summary, err := s.applyEdits(inst, tr, solveParams(&req.solveRequest), model, req.Edits, rec)
	if err != nil {
		s.proc.Counter("tmedbd.edit.rejected").Inc()
		s.fail(st, w, http.StatusBadRequest, err)
		return
	}
	if lg.Enabled() {
		lg.Event("edit.applied",
			tmedb.LogInt("ops", summary.Ops),
			tmedb.LogInt("reused", summary.Reused),
			tmedb.LogInt("applied", summary.Applied),
			tmedb.LogInt("noops", summary.Noops))
	}

	key := cacheKey{
		traceHash:     tmedb.TraceHash(tr),
		traceN:        tr.N,
		traceHorizon:  tr.Horizon,
		traceContacts: len(tr.Contacts),
		src:           req.Src,
		t0:            req.T0,
		delay:         req.Delay,
		eps:           req.Eps,
		model:         req.model(),
		alg:           req.alg(),
		level:         req.level(),
		seed:          req.Seed,
		edits:         editsHash(req.Edits),
	}
	st.cache = "miss"
	if !req.NoCache && !traceReq {
		if e, ok := s.cache.Get(key); ok {
			s.proc.Counter("tmedbd.edit.cache.hits").Inc()
			st.cache = "hit"
			if lg.Enabled() {
				lg.Event("edit.cache_hit")
			}
			s.writeSolve(st, w, solveResponse{ReqID: st.id, Cache: "hit", Edit: &summary}, e.sched, e.meta, e.incomplete)
			return
		}
		s.proc.Counter("tmedbd.edit.cache.misses").Inc()
	}

	qStart := time.Now()
	release, shed, err := s.admit(r.Context())
	s.qwait.Observe(float64(time.Since(qStart)) / float64(time.Millisecond))
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			s.fail(st, w, http.StatusServiceUnavailable, err)
		} else {
			s.proc.Counter("tmedbd.cancelled").Inc()
			st.err = err
			writeError(w, statusClientClosedRequest, err)
		}
		return
	}
	defer release()
	if shed > 0 && lg.Enabled() {
		lg.Event("edit.shed", tmedb.LogInt("level", shed))
	}

	sched, outcome, shedRungs, incomplete, err := s.solveGraph(r.Context(), &req.solveRequest, inst.g, shed, rec)
	st.shedRungs = shedRungs
	if shedRungs > 0 {
		s.proc.Counter("tmedbd.shed.requests").Inc()
		s.proc.Counter("tmedbd.shed.rungs").Add(int64(shedRungs))
	}
	if err != nil {
		switch {
		case errors.Is(err, tmedb.ErrBudgetExceeded):
			s.fail(st, w, http.StatusGatewayTimeout, err)
		case errors.Is(err, tmedb.ErrCancelled):
			s.proc.Counter("tmedbd.cancelled").Inc()
			st.err = err
			writeError(w, statusClientClosedRequest, err)
		default:
			s.fail(st, w, http.StatusInternalServerError, err)
		}
		return
	}
	s.proc.Counter("tmedbd.edit.solved").Inc()

	meta := &tmedb.ScheduleMeta{
		Algorithm: req.alg(),
		Model:     req.model(),
		Seed:      req.Seed,
		Trace:     traceName,
		Src:       req.Src,
		T0:        req.T0,
		Deadline:  req.T0 + req.Delay,
	}
	outcome.Annotate(meta)

	resp := solveResponse{ReqID: st.id, Cache: "miss", ShedRungs: shedRungs, Edit: &summary}
	if outcome != nil {
		resp.Rung = outcome.Rung.String()
		resp.DegradeReason = outcome.Reason
		st.rung = resp.Rung
	}
	var report *tmedb.RunReport
	if rec != nil {
		rp := rec.Snapshot(map[string]string{
			"algorithm": meta.Algorithm,
			"model":     meta.Model,
			"trace":     traceName,
		})
		report = &rp
		meta.PhaseMS = rp.PhaseWallMS()
		st.phaseMS = meta.PhaseMS
		if req.Report {
			resp.Report = report
		}
	}
	// Same fill rule as /solve: only direct-path results are cached, and
	// the key's edits fingerprint keeps every delta's schedule separate.
	if !req.NoCache && outcome == nil {
		s.cache.Put(key, cacheEntry{sched: sched, meta: meta, incomplete: incomplete})
	}
	if traceReq {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Request-Id", st.id)
		if err := report.WriteTrace(w); err != nil {
			st.err = err
		}
		return
	}
	s.writeSolve(st, w, resp, sched, meta, incomplete)
}

// instance returns the live instance for key, creating an empty shell
// on first use; the shell's graph materializes lazily under the
// instance lock.
func (s *server) instance(key instanceKey) *editInstance {
	s.instMu.Lock()
	defer s.instMu.Unlock()
	if inst, ok := s.instances.Get(key); ok {
		return inst
	}
	inst := &editInstance{}
	s.instances.Put(key, inst)
	return inst
}

// applyEdits reconciles the live instance with the requested edit
// sequence: when the sequence extends what is already applied, only the
// suffix runs and the solve rides the patched structures; anything else
// rebuilds the graph from the base trace first. A rejected edit leaves
// the instance on the successfully applied prefix — a state a shorter
// valid sequence still reaches — and fails the request. Callers hold
// inst.mu.
func (s *server) applyEdits(inst *editInstance, tr *tmedb.Trace, params tmedb.Params, model tmedb.Model, edits []editSpec, rec *tmedb.Recorder) (editSummary, error) {
	span := rec.StartPhase("edit.apply")
	defer span.End()
	sum := editSummary{Ops: len(edits)}
	if inst.g == nil || !prefixOf(inst.applied, edits) {
		if inst.g != nil {
			sum.Rebuilt = true
			s.proc.Counter("tmedbd.edit.rebuilds").Inc()
		}
		inst.g = tr.ToTVEG(0, params, model)
		inst.applied = nil
	}
	sum.Reused = len(inst.applied)
	s.proc.Counter("tmedbd.edit.reused").Add(int64(sum.Reused))
	for k := sum.Reused; k < len(edits); k++ {
		changed, err := edits[k].apply(inst.g)
		if err != nil {
			return sum, fmt.Errorf("edits[%d]: %w", k, err)
		}
		inst.applied = append(inst.applied, edits[k])
		sum.Applied++
		if !changed {
			sum.Noops++
		}
	}
	s.proc.Counter("tmedbd.edit.applied").Add(int64(sum.Applied))
	s.proc.Counter("tmedbd.edit.noops").Add(int64(sum.Noops))
	sum.Version = inst.g.Version()
	return sum, nil
}

// prefixOf reports whether applied is a leading prefix of edits.
func prefixOf(applied, edits []editSpec) bool {
	if len(applied) > len(edits) {
		return false
	}
	for k := range applied {
		if applied[k] != edits[k] {
			return false
		}
	}
	return true
}

// solve runs the planner stack for one admitted request. Unshed,
// unbudgeted requests take the direct path: the requested planner via
// ScheduleWithContext, byte-identical to a CLI/facade solve. A positive
// budget or a shed level engages the degradation ladder, which plans
// model-true (the fading family on fading graphs) so every fallback
// stays T/ε-feasible. The int result is the number of ladder rungs the
// shed level actually removed — zero when the ladder, already bounded by
// the requested planner, starts at or below the shed rung.
func (s *server) solve(ctx context.Context, req *solveRequest, tr *tmedb.Trace, shed int, rec *tmedb.Recorder) (tmedb.Schedule, *tmedb.DegradeOutcome, int, []int, error) {
	model, err := parseModel(req.model())
	if err != nil {
		return nil, nil, 0, nil, err
	}
	g := tr.ToTVEG(0, solveParams(req), model)
	return s.solveGraph(ctx, req, g, shed, rec)
}

// solveParams derives the graph-shaping parameters of a request.
func solveParams(req *solveRequest) tmedb.Params {
	params := tmedb.DefaultParams()
	if req.Eps > 0 {
		params.Eps = req.Eps
	}
	return params
}

// solveGraph runs the planner stack against an already-materialized
// graph — the seam /edit uses to solve its live (incrementally patched)
// instance with the same admission, budget, and ladder semantics as
// /solve.
func (s *server) solveGraph(ctx context.Context, req *solveRequest, g *tmedb.Graph, shed int, rec *tmedb.Recorder) (tmedb.Schedule, *tmedb.DegradeOutcome, int, []int, error) {
	workers := s.effectiveWorkers(req.Workers)
	deadline := req.T0 + req.Delay

	var err error
	var sched tmedb.Schedule
	var outcome *tmedb.DegradeOutcome
	shedRungs := 0
	if req.budget() > 0 || shed > 0 {
		ladder, lerr := tmedb.ParseLadder(req.Ladder)
		if lerr != nil {
			return nil, nil, 0, nil, lerr
		}
		// The request's planner bounds the best rung (a greed request
		// must not be upgraded to a full Steiner solve), then shedding
		// lowers the start further. Only the second trim is load
		// shedding; shedRungs reports the rungs it actually removed.
		ladder = tmedb.ShedLadder(ladder, rungFor(req.alg()))
		bounded := len(ladder)
		ladder = tmedb.ShedLadder(ladder, tmedb.DegradeRung(shed))
		shedRungs = bounded - len(ladder)
		sched, outcome, err = tmedb.SolveWithLadder(ctx, g, tmedb.NodeID(req.Src), req.T0, deadline, tmedb.DegradeOptions{
			Budget:  req.budget(),
			Ladder:  ladder,
			Level:   req.level(),
			Workers: workers,
			Seed:    req.Seed,
			Obs:     rec,
		})
	} else {
		alg := s.planner(req, workers, rec)
		sched, err = tmedb.ScheduleWithContext(ctx, alg, g, tmedb.NodeID(req.Src), req.T0, deadline)
	}

	var inc *tmedb.IncompleteError
	switch {
	case err == nil:
		return sched, outcome, shedRungs, nil, nil
	case errors.As(err, &inc):
		uncovered := make([]int, len(inc.Uncovered))
		for i, n := range inc.Uncovered {
			uncovered[i] = int(n)
		}
		return sched, outcome, shedRungs, uncovered, nil
	default:
		return nil, nil, shedRungs, nil, err
	}
}

// effectiveWorkers caps a request's worker ask by the daemon's per-solve
// bound; 0 inherits the daemon default.
func (s *server) effectiveWorkers(ask int) int {
	if ask <= 0 {
		return s.cfg.workers
	}
	if s.cfg.workers > 0 && ask > s.cfg.workers {
		return s.cfg.workers
	}
	return ask
}

func (s *server) planner(req *solveRequest, workers int, rec *tmedb.Recorder) tmedb.Scheduler {
	switch req.alg() {
	case "eedcb":
		return tmedb.EEDCB{Level: req.level(), Workers: workers, Obs: rec}
	case "greed":
		return tmedb.Greedy{Obs: rec}
	case "rand":
		return tmedb.Random{Seed: req.Seed, Obs: rec}
	case "fr-greed":
		return tmedb.FRGreedy{Workers: workers, Obs: rec}
	case "fr-rand":
		return tmedb.FRRandom{Seed: req.Seed, Workers: workers, Obs: rec}
	default:
		return tmedb.FREEDCB{Level: req.level(), Workers: workers, Obs: rec}
	}
}

// rungFor maps a requested planner to the best degradation rung it may
// run at.
func rungFor(alg string) tmedb.DegradeRung {
	switch alg {
	case "greed", "fr-greed":
		return tmedb.RungGreed
	case "rand", "fr-rand":
		return tmedb.RungRand
	default:
		return tmedb.RungFull
	}
}

// statusClientClosedRequest mirrors nginx's non-standard 499: the client
// cancelled before the daemon could answer. Nothing reads the body; the
// code keeps access logs honest.
const statusClientClosedRequest = 499

func (s *server) writeSolve(st *reqState, w http.ResponseWriter, resp solveResponse, sched tmedb.Schedule, meta *tmedb.ScheduleMeta, incomplete []int) {
	var buf bytes.Buffer
	if err := tmedb.WriteScheduleJSONMeta(&buf, sched, meta); err != nil {
		s.fail(st, w, http.StatusInternalServerError, err)
		return
	}
	resp.Schedule = json.RawMessage(buf.Bytes())
	resp.Incomplete = incomplete
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// fail records the terminal error in the request state (for the flight
// record and the solve.failed event) and answers it.
func (s *server) fail(st *reqState, w http.ResponseWriter, code int, err error) {
	s.proc.Counter("tmedbd.errors").Inc()
	st.err = err
	writeError(w, code, err)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
