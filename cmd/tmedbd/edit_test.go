package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro"
)

// editBody builds a POST /edit body for a synthetic-trace instance.
func editBody(in instance, edits []editSpec, extra func(*solveRequest)) []byte {
	req := editRequest{
		solveRequest: solveRequest{
			Alg:       in.alg,
			Model:     in.model,
			Synthetic: &syntheticRef{N: in.n, Seed: in.seed},
			Src:       in.src,
			T0:        soakT0,
			Delay:     soakDelay,
			Seed:      in.seed,
		},
		Edits: edits,
	}
	if extra != nil {
		extra(&req.solveRequest)
	}
	b, _ := json.Marshal(req)
	return b
}

func postEdit(client *http.Client, url string, body []byte) (int, solveResponse, string, error) {
	resp, err := client.Post(url+"/edit", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, solveResponse{}, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, solveResponse{}, "", err
	}
	var sr solveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &sr); err != nil {
			return resp.StatusCode, sr, "", fmt.Errorf("bad edit response: %w (%s)", err, data)
		}
	}
	return resp.StatusCode, sr, string(data), nil
}

// expectedEdited replays the edit sequence onto a fresh facade graph and
// solves it directly — the cold ground truth every /edit answer must
// match byte for byte.
func expectedEdited(t *testing.T, in instance, edits []editSpec) tmedb.Schedule {
	t.Helper()
	tr := tmedb.GenerateTrace(tmedb.TraceOptions{N: in.n}, in.seed)
	model, err := parseModel(in.model)
	if err != nil {
		t.Fatal(err)
	}
	g := tr.ToTVEG(0, tmedb.DefaultParams(), model)
	for k := range edits {
		if _, err := edits[k].apply(g); err != nil {
			t.Fatalf("replay edit %d: %v", k, err)
		}
	}
	req := solveRequest{Alg: in.alg, Seed: in.seed}
	alg := (&server{cfg: defaultConfig()}).planner(&req, 1, nil)
	sched, err := alg.Schedule(g, tmedb.NodeID(in.src), soakT0, soakT0+soakDelay)
	var inc *tmedb.IncompleteError
	if err != nil && !errors.As(err, &inc) {
		t.Fatalf("facade solve %+v: %v", in, err)
	}
	return sched
}

// editWorkload is the shared fixture: a synthetic trace plus an edit
// sequence that grows across requests. The added contacts sit inside the
// soak solve window so the edits actually move the schedule.
var editWorkload = struct {
	in    instance
	edits []editSpec
}{
	in: instance{alg: "greed", model: "static", n: 16, seed: 1, src: 0},
	edits: []editSpec{
		{Op: "add", I: 0, J: 9, Start: soakT0 + 50, End: soakT0 + 400, Dist: 2},
		{Op: "remove", I: 0, J: 9, Start: soakT0 + 300, End: soakT0 + 400},
		{Op: "add", I: 9, J: 14, Start: soakT0 + 700, End: soakT0 + 1100, Dist: 3},
		{Op: "retime", I: 9, J: 14, Start: soakT0 + 700, End: soakT0 + 1100,
			ToStart: soakT0 + 800, ToEnd: soakT0 + 1200},
	},
}

// TestEditSolveMatchesColdSolve is the daemon-tier byte-identity gate:
// every prefix of the edit sequence, solved via POST /edit (live
// instance, patched structures), must equal a direct facade solve of a
// fresh graph with the same edits replayed — and growing sequences must
// reuse the live instance instead of rebuilding.
func TestEditSolveMatchesColdSolve(t *testing.T) {
	srv := newServer(defaultConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	in, edits := editWorkload.in, editWorkload.edits

	for k := 1; k <= len(edits); k++ {
		code, sr, raw, err := postEdit(ts.Client(), ts.URL, editBody(in, edits[:k], nil))
		if err != nil {
			t.Fatal(err)
		}
		if code != http.StatusOK {
			t.Fatalf("prefix %d: status %d: %s", k, code, raw)
		}
		want := scheduleBytes(t, expectedEdited(t, in, edits[:k]))
		got := scheduleBytes(t, decodeSchedule(t, sr))
		if !bytes.Equal(got, want) {
			t.Fatalf("prefix %d: /edit schedule diverges from cold facade replay\n got: %s\nwant: %s", k, got, want)
		}
		if sr.Edit == nil {
			t.Fatalf("prefix %d: response missing edit summary: %s", k, raw)
		}
		if sr.Edit.Ops != k {
			t.Fatalf("prefix %d: summary ops %d", k, sr.Edit.Ops)
		}
		// Each request extends the previous one by a single op: the live
		// instance serves the prefix, only the new op is applied.
		if wantReused := k - 1; sr.Edit.Reused != wantReused || sr.Edit.Applied != 1 || sr.Edit.Rebuilt {
			t.Fatalf("prefix %d: summary %+v, want reused=%d applied=1 rebuilt=false", k, sr.Edit, wantReused)
		}
	}
	if v := srv.proc.Counter("tmedbd.edit.rebuilds").Value(); v != 0 {
		t.Fatalf("monotone sequence forced %d rebuilds", v)
	}

	// Same full sequence again: the schedule cache answers, and the
	// instance reuses every op.
	code, sr, raw, err := postEdit(ts.Client(), ts.URL, editBody(in, edits, nil))
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("repeat: status %d: %s", code, raw)
	}
	if sr.Cache != "hit" {
		t.Fatalf("repeat solve cache = %q, want hit", sr.Cache)
	}
	if sr.Edit.Reused != len(edits) || sr.Edit.Applied != 0 {
		t.Fatalf("repeat summary %+v, want everything reused", sr.Edit)
	}

	// A diverging sequence (different first op) must rebuild — never
	// answer from the edited instance — and still match its own cold
	// replay.
	alt := []editSpec{{Op: "add", I: 0, J: 3, Start: soakT0 + 100, End: soakT0 + 500, Dist: 4}}
	code, sr, raw, err = postEdit(ts.Client(), ts.URL, editBody(in, alt, nil))
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("diverging: status %d: %s", code, raw)
	}
	if !sr.Edit.Rebuilt {
		t.Fatalf("diverging sequence did not rebuild: %+v", sr.Edit)
	}
	want := scheduleBytes(t, expectedEdited(t, in, alt))
	if got := scheduleBytes(t, decodeSchedule(t, sr)); !bytes.Equal(got, want) {
		t.Fatalf("diverging /edit schedule diverges from cold replay\n got: %s\nwant: %s", got, want)
	}
}

// TestEditConcurrentWithSolve hammers POST /edit and POST /solve on the
// same trace concurrently (CI runs this package -race -count=2): /solve
// must keep answering the unedited base byte-identically, and every
// /edit answer must match the cold replay of exactly the sequence it
// carried.
func TestEditConcurrentWithSolve(t *testing.T) {
	cfg := defaultConfig()
	cfg.maxConcurrent = 4
	cfg.maxQueue = 64
	srv := newServer(cfg)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	in, edits := editWorkload.in, editWorkload.edits

	wantBase := scheduleBytes(t, expected(t, in))
	wantEdited := make([][]byte, len(edits)+1)
	for k := 1; k <= len(edits); k++ {
		wantEdited[k] = scheduleBytes(t, expectedEdited(t, in, edits[:k]))
	}

	const clients = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*iters)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				if c%2 == 0 {
					// Solver client: the base trace, no edits, bypassing the
					// cache so every request truly solves.
					code, sr, err := postSolve(ts.Client(), ts.URL, solveBody(in, func(r *solveRequest) { r.NoCache = true }))
					if err != nil || code != http.StatusOK {
						errs <- fmt.Errorf("solve client %d: status %d err %v", c, code, err)
						return
					}
					if got := sr.Schedule; !jsonScheduleEqual(got, wantBase) {
						errs <- fmt.Errorf("solve client %d: schedule diverges from unedited base", c)
						return
					}
				} else {
					// Edit client: a growing prefix of the shared sequence.
					k := 1 + (c+it)%len(edits)
					code, sr, raw, err := postEdit(ts.Client(), ts.URL,
						editBody(in, edits[:k], func(r *solveRequest) { r.NoCache = true }))
					if err != nil || code != http.StatusOK {
						errs <- fmt.Errorf("edit client %d: status %d err %v: %s", c, code, err, raw)
						return
					}
					if got := sr.Schedule; !jsonScheduleEqual(got, wantEdited[k]) {
						errs <- fmt.Errorf("edit client %d: prefix %d schedule diverges from cold replay", c, k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// jsonScheduleEqual compares a response's schedule envelope against
// canonical schedule bytes, ignoring the meta wrapper.
func jsonScheduleEqual(envelope json.RawMessage, want []byte) bool {
	sched, _, err := tmedb.ReadScheduleJSONMeta(bytes.NewReader(envelope))
	if err != nil {
		return false
	}
	got, err := json.Marshal(sched)
	if err != nil {
		return false
	}
	return bytes.Equal(got, want)
}

// TestEditValidation pins the request-level error taxonomy of /edit.
func TestEditValidation(t *testing.T) {
	srv := newServer(defaultConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	in := editWorkload.in

	for _, tc := range []struct {
		name  string
		edits []editSpec
	}{
		{"empty-sequence", nil},
		{"unknown-op", []editSpec{{Op: "warp", I: 0, J: 1, Start: 1, End: 2}}},
		{"self-loop", []editSpec{{Op: "add", I: 3, J: 3, Start: 1, End: 2, Dist: 1}}},
		{"empty-window", []editSpec{{Op: "remove", I: 0, J: 1, Start: 5, End: 5}}},
		{"add-no-dist", []editSpec{{Op: "add", I: 0, J: 1, Start: 1, End: 2}}},
		{"retime-empty-target", []editSpec{{Op: "retime", I: 0, J: 1, Start: 1, End: 2, ToStart: 9, ToEnd: 9}}},
		{"node-out-of-range", []editSpec{{Op: "add", I: 0, J: 99, Start: 1, End: 2, Dist: 1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, _, raw, err := postEdit(ts.Client(), ts.URL, editBody(in, tc.edits, nil))
			if err != nil {
				t.Fatal(err)
			}
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", code, raw)
			}
		})
	}
}

// TestEditRejectedOpKeepsInstanceUsable: an edit the graph rejects
// (retiming a contact that does not exist) answers 400, counts in
// tmedbd.edit.rejected, and leaves the live instance able to serve the
// next valid request.
func TestEditRejectedOpKeepsInstanceUsable(t *testing.T) {
	srv := newServer(defaultConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	in := editWorkload.in

	bad := []editSpec{{Op: "retime", I: 0, J: 1, Start: 1, End: 2, ToStart: 10, ToEnd: 11}}
	code, _, raw, err := postEdit(ts.Client(), ts.URL, editBody(in, bad, nil))
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusBadRequest {
		t.Fatalf("rejected retime: status %d, want 400: %s", code, raw)
	}
	if v := srv.proc.Counter("tmedbd.edit.rejected").Value(); v != 1 {
		t.Fatalf("tmedbd.edit.rejected = %d, want 1", v)
	}

	good := []editSpec{{Op: "add", I: 0, J: 9, Start: soakT0 + 50, End: soakT0 + 400, Dist: 2}}
	code, sr, raw, err := postEdit(ts.Client(), ts.URL, editBody(in, good, nil))
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("valid edit after rejection: status %d: %s", code, raw)
	}
	want := scheduleBytes(t, expectedEdited(t, in, good))
	if got := scheduleBytes(t, decodeSchedule(t, sr)); !bytes.Equal(got, want) {
		t.Fatalf("post-rejection /edit diverges from cold replay\n got: %s\nwant: %s", got, want)
	}
}
