package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// instance is one solve workload the soak compares against a direct
// facade call.
type instance struct {
	alg, model string
	n          int
	seed       int64
	src        int
}

const (
	soakT0    = 9000.0
	soakDelay = 2000.0
)

// expected plans the instance directly through the facade — the ground
// truth the daemon must match byte for byte.
func expected(t *testing.T, in instance) tmedb.Schedule {
	t.Helper()
	tr := tmedb.GenerateTrace(tmedb.TraceOptions{N: in.n}, in.seed)
	model, err := parseModel(in.model)
	if err != nil {
		t.Fatal(err)
	}
	g := tr.ToTVEG(0, tmedb.DefaultParams(), model)
	req := solveRequest{Alg: in.alg, Seed: in.seed}
	alg := (&server{cfg: defaultConfig()}).planner(&req, 1, nil)
	sched, err := alg.Schedule(g, tmedb.NodeID(in.src), soakT0, soakT0+soakDelay)
	var inc *tmedb.IncompleteError
	if err != nil && !errors.As(err, &inc) {
		t.Fatalf("facade solve %+v: %v", in, err)
	}
	return sched
}

func solveBody(in instance, extra func(*solveRequest)) []byte {
	req := solveRequest{
		Alg:       in.alg,
		Model:     in.model,
		Synthetic: &syntheticRef{N: in.n, Seed: in.seed},
		Src:       in.src,
		T0:        soakT0,
		Delay:     soakDelay,
		Seed:      in.seed,
	}
	if extra != nil {
		extra(&req)
	}
	b, _ := json.Marshal(req)
	return b
}

func postSolve(client *http.Client, url string, body []byte) (int, solveResponse, error) {
	resp, err := client.Post(url+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, solveResponse{}, err
	}
	defer resp.Body.Close()
	var sr solveResponse
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, sr, err
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &sr); err != nil {
			return resp.StatusCode, sr, fmt.Errorf("bad solve response: %w (%s)", err, data)
		}
	}
	return resp.StatusCode, sr, nil
}

// scheduleBytes canonicalizes a schedule for byte-identity comparison.
func scheduleBytes(t *testing.T, s tmedb.Schedule) []byte {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func decodeSchedule(t *testing.T, sr solveResponse) tmedb.Schedule {
	t.Helper()
	sched, _, err := tmedb.ReadScheduleJSONMeta(bytes.NewReader(sr.Schedule))
	if err != nil {
		t.Fatalf("response schedule: %v", err)
	}
	return sched
}

// checkNoLeaks asserts the goroutine count settles back to the baseline
// after the daemon drains. Settling is polled: runtime-internal and
// keep-alive teardown goroutines may need a moment to exit.
func checkNoLeaks(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak after drain: %d -> %d\n%s", base, n, buf[:runtime.Stack(buf, true)])
}

// TestSoakMixedWorkloads hammers the daemon with concurrent clients
// running mixed workloads — cache hits, cold solves, deadline expiries,
// client cancellations — and asserts every full-quality schedule is
// byte-identical to a direct facade solve, every budgeted solve still
// answers (degraded, not erroring), and the process drains without
// leaking goroutines.
func TestSoakMixedWorkloads(t *testing.T) {
	base := runtime.NumGoroutine()

	cfg := defaultConfig()
	cfg.maxConcurrent = 2
	// A queue this deep never sheds at 8 clients (shedding has its own
	// dedicated test below), so every schedule here is full-quality and
	// must match the facade byte for byte.
	cfg.maxQueue = 64
	srv := newServer(cfg)
	ts := httptest.NewServer(srv.handler())

	instances := []instance{
		{alg: "eedcb", model: "static", n: 10, seed: 1, src: 0},
		{alg: "eedcb", model: "static", n: 10, seed: 2, src: 3},
		{alg: "fr-eedcb", model: "rayleigh", n: 10, seed: 1, src: 0},
		{alg: "greed", model: "static", n: 12, seed: 4, src: 1},
		{alg: "fr-greed", model: "rayleigh", n: 10, seed: 5, src: 2},
		{alg: "rand", model: "static", n: 12, seed: 6, src: 0},
		{alg: "fr-rand", model: "nakagami", n: 10, seed: 7, src: 1},
	}
	want := make([][]byte, len(instances))
	for i, in := range instances {
		want[i] = scheduleBytes(t, expected(t, in))
	}

	const clients = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*2)

	// Telemetry under load: collect the req_id of every completed (200)
	// solve for the flight-recorder exactly-once check, and scrape
	// /metrics concurrently — every scrape must parse as valid
	// Prometheus exposition while solves are in flight.
	var completedMu sync.Mutex
	var completed []string
	scrapeStop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-scrapeStop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				errs <- fmt.Errorf("metrics scrape: %w", err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- fmt.Errorf("metrics scrape: %w", err)
				return
			}
			if err := validateExposition(string(body)); err != nil {
				errs <- fmt.Errorf("metrics scrape mid-soak: %w", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	recordCompleted := func(sr solveResponse) {
		completedMu.Lock()
		completed = append(completed, sr.ReqID)
		completedMu.Unlock()
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Per-client transport: keeps the clients genuinely concurrent
			// instead of multiplexed through one shared connection pool.
			tr := &http.Transport{}
			defer tr.CloseIdleConnections()
			client := &http.Client{Transport: tr}
			for r := 0; r < rounds; r++ {
				i := (c + r) % len(instances)
				switch r % 4 {
				case 0, 1: // cold solves and cache hits on contended keys
					code, sr, err := postSolve(client, ts.URL, solveBody(instances[i], nil))
					if err != nil {
						errs <- err
						continue
					}
					if code != http.StatusOK {
						errs <- fmt.Errorf("solve %v: status %d", instances[i], code)
						continue
					}
					if sr.ShedRungs > 0 {
						errs <- fmt.Errorf("solve %v shed %d rungs with an empty queue", instances[i], sr.ShedRungs)
						continue
					}
					recordCompleted(sr)
					if got := scheduleBytes(t, decodeSchedule(t, sr)); !bytes.Equal(got, want[i]) {
						errs <- fmt.Errorf("solve %v (%s): schedule differs from facade\n got %s\nwant %s",
							instances[i], sr.Cache, got, want[i])
					}
				case 2: // deadline expiry: 1ms budget must degrade, never 5xx
					code, sr, err := postSolve(client, ts.URL, solveBody(instances[i], func(q *solveRequest) {
						q.DeadlineMS = 1
						q.NoCache = true
					}))
					if err != nil {
						errs <- err
						continue
					}
					if code != http.StatusOK {
						errs <- fmt.Errorf("budgeted solve %v: status %d, want degraded 200", instances[i], code)
						continue
					}
					recordCompleted(sr)
					if sr.Rung == "" {
						errs <- fmt.Errorf("budgeted solve %v: no rung in response", instances[i])
					}
				case 3: // client cancellation mid-queue/mid-solve
					ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
					req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/solve",
						bytes.NewReader(solveBody(instances[i], func(q *solveRequest) { q.NoCache = true })))
					resp, err := client.Do(req)
					if err == nil {
						resp.Body.Close()
					}
					cancel()
				}
			}
		}(c)
	}
	wg.Wait()
	close(scrapeStop)
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Cache effectiveness: instances[0] was solved unshed during the soak
	// (client 0, round 0), so a final repeat must be a hit.
	code, sr, err := postSolve(ts.Client(), ts.URL, solveBody(instances[0], nil))
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-soak solve: code=%d err=%v", code, err)
	}
	if sr.Cache != "hit" {
		t.Errorf("post-soak repeat of instances[0] was a %q, want hit", sr.Cache)
	}
	recordCompleted(sr)
	rep := srv.proc.Snapshot(nil)
	if rep.Counters["tmedbd.solved"] == 0 {
		t.Error("fleet counters recorded zero solves")
	}
	if rep.Rollings == nil {
		t.Error("fleet report has no rolling latency windows")
	}

	// Flight-recorder consistency: every completed request's record was
	// published before its response bytes, so by now each collected
	// req_id appears in /debug/requests exactly once (well under the
	// default 256-slot capacity, nothing was evicted).
	flight := fetchFlight(t, ts.URL)
	seen := map[string]int{}
	for _, r := range flight.Requests {
		seen[r.ID]++
	}
	for _, id := range completed {
		if id == "" {
			t.Error("completed solve carried no req_id")
			continue
		}
		if seen[id] != 1 {
			t.Errorf("req_id %s appears %d times in the flight recorder, want exactly once", id, seen[id])
		}
	}
	for i := 1; i < len(flight.Requests); i++ {
		if flight.Requests[i].Seq <= flight.Requests[i-1].Seq {
			t.Errorf("flight snapshot out of order at %d: seq %d then %d",
				i, flight.Requests[i-1].Seq, flight.Requests[i].Seq)
		}
	}

	ts.Close()
	checkNoLeaks(t, base)
}

// flightPageJSON mirrors the /debug/requests envelope for decoding.
type flightPageJSON struct {
	Cap      int                   `json:"cap"`
	Recorded uint64                `json:"recorded"`
	Requests []tmedb.RequestRecord `json:"requests"`
}

func fetchFlight(t *testing.T, url string) flightPageJSON {
	t.Helper()
	resp, err := http.Get(url + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page flightPageJSON
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatalf("flight page: %v", err)
	}
	return page
}

// expositionLine matches one Prometheus text-format sample:
// name{labels} value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// validateExposition checks that body parses as Prometheus text
// exposition format 0.0.4 (comment/TYPE/HELP lines or samples).
func validateExposition(body string) error {
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !expositionLine.MatchString(line) {
			return fmt.Errorf("malformed exposition line: %q", line)
		}
	}
	return nil
}

// TestOverloadShedsInsteadOfErroring pins the shedding contract on a
// one-slot daemon: queued requests answer with lowered rungs (200 +
// shed_rungs), every shed schedule is still delay- and ε-feasible on its
// instance, and only a queue past maxQueue hits the 503 backstop. The
// slot is occupied directly through the semaphore, so queue depths — and
// therefore shed levels — are deterministic regardless of solve speed
// (a timing-based burst hides shedding entirely once solves outpace
// connection dials).
func TestOverloadShedsInsteadOfErroring(t *testing.T) {
	base := runtime.NumGoroutine()

	cfg := defaultConfig()
	cfg.maxConcurrent = 1
	cfg.maxQueue = 8
	srv := newServer(cfg)
	ts := httptest.NewServer(srv.handler())

	// Occupy the only solve slot; every request below must queue behind
	// it, so the k-th arrival observes depth k-1.
	srv.sem <- struct{}{}

	waitDepth := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for srv.waiting.Load() != want {
			if time.Now().After(deadline) {
				t.Fatalf("queue depth stuck at %d, want %d", srv.waiting.Load(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Fill the queue to one below capacity: depths 0..6 map to shed
	// levels 0,0,1,1,2,2,3 under maxQueue=8 and a 4-rung ladder.
	queued := cfg.maxQueue - 1
	type result struct {
		code int
		sr   solveResponse
		in   instance
		err  error
	}
	results := make(chan result, queued+1)
	post := func(i int) {
		tr := &http.Transport{}
		defer tr.CloseIdleConnections()
		client := &http.Client{Transport: tr}
		in := instance{alg: "fr-eedcb", model: "rayleigh", n: 14, seed: int64(100 + i), src: 0}
		code, sr, err := postSolve(client, ts.URL, solveBody(in, func(q *solveRequest) { q.NoCache = true }))
		results <- result{code: code, sr: sr, in: in, err: err}
	}
	var wg sync.WaitGroup
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			post(i)
		}(i)
		// Arrivals are sequenced so each request's observed depth is
		// exactly its index.
		waitDepth(int64(i + 1))
	}

	// One more fills the queue at the last-resort rung...
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(queued)
	}()
	waitDepth(int64(queued + 1))
	// ...and with the queue at capacity the backstop must reject.
	code, _, err := postSolve(ts.Client(), ts.URL, solveBody(
		instance{alg: "fr-eedcb", model: "rayleigh", n: 14, seed: 999, src: 0},
		func(q *solveRequest) { q.NoCache = true }))
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable {
		t.Errorf("request past queue capacity answered %d, want 503", code)
	}

	<-srv.sem // release the slot; the queue drains serially
	wg.Wait()
	close(results)

	shed, rejected := 0, 0
	for r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		switch r.code {
		case http.StatusOK:
			if r.sr.ShedRungs > 0 {
				shed++
				// Degraded, but still model-true feasible: every covered
				// node is informed by T0+T with residual failure <= ε.
				tr := tmedb.GenerateTrace(tmedb.TraceOptions{N: r.in.n}, r.in.seed)
				model, _ := parseModel(r.in.model)
				g := tr.ToTVEG(0, tmedb.DefaultParams(), model)
				sched := decodeSchedule(t, r.sr)
				uncovered := make(map[int]bool, len(r.sr.Incomplete))
				for _, n := range r.sr.Incomplete {
					uncovered[n] = true
				}
				for n := 0; n < g.N(); n++ {
					if uncovered[n] {
						continue
					}
					p := tmedb.UninformedProb(g, sched, 0, tmedb.NodeID(n), soakT0+soakDelay)
					if p > g.Params.Eps*1.000001 {
						t.Errorf("shed schedule violates ε at node %d: %g", n, p)
					}
				}
			}
		case http.StatusServiceUnavailable:
			rejected++
		default:
			t.Errorf("overload answered %d, want 200 (possibly shed) or 503", r.code)
		}
	}
	// Depths 0..7 shed 0,0,1,1,2,2,3,3 rungs: six requests degraded.
	if want := 6; shed != want {
		t.Errorf("%d requests shed rungs, want exactly %d (depths are deterministic)", shed, want)
	}
	if rejected > 0 {
		t.Errorf("%d requests rejected within queue capacity", rejected)
	}

	ts.Close()
	checkNoLeaks(t, base)
}

// TestRunRestartable proves the daemon can be started and stopped twice
// in one process — the regression that flushed out the once-per-process
// expvar publish panic (a second run() used to crash on PublishExpvar).
func TestRunRestartable(t *testing.T) {
	for i := 0; i < 2; i++ {
		cfg := defaultConfig()
		cfg.addr = "127.0.0.1:0"
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- run(ctx, cfg, io.Discard) }()
		time.Sleep(50 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("run %d did not drain", i)
		}
	}
}

// TestParseFlagsValidation pins the upfront flag validation.
func TestParseFlagsValidation(t *testing.T) {
	bad := [][]string{
		{"-workers", "-1"},
		{"-max-concurrent", "0"},
		{"-max-queue", "0"},
		{"-cache", "0"},
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted invalid flags", args)
		}
	}
	if _, err := parseFlags(nil); err != nil {
		t.Errorf("default flags rejected: %v", err)
	}
}

// TestSolveRequestValidation pins the request validation surface.
func TestSolveRequestValidation(t *testing.T) {
	good := solveRequest{Synthetic: &syntheticRef{N: 10, Seed: 1}, Delay: 100}
	if err := good.validate(); err != nil {
		t.Fatalf("minimal request rejected: %v", err)
	}
	cases := []func(*solveRequest){
		func(r *solveRequest) { r.Synthetic = nil },                                   // no source
		func(r *solveRequest) { r.Trace = "x" },                                       // two sources
		func(r *solveRequest) { r.Synthetic.N = 0 },                                   // empty synthetic
		func(r *solveRequest) { r.Delay = 0 },                                         // no delay window
		func(r *solveRequest) { r.Src = -1 },                                          // bad source
		func(r *solveRequest) { r.Eps = 1 },                                           // eps out of range
		func(r *solveRequest) { r.Workers = -2 },                                      // negative workers
		func(r *solveRequest) { r.DeadlineMS = -1 },                                   // negative budget
		func(r *solveRequest) { r.Alg = "dijkstra" },                                  // unknown alg
		func(r *solveRequest) { r.Model = "awgn" },                                    // unknown model
		func(r *solveRequest) { r.Ladder = "full,warp" },                              // bad ladder
		func(r *solveRequest) { r.Level = -1 },                                        // bad level
		func(r *solveRequest) { r.TraceFile = "x"; r.Synthetic = nil; r.Trace = "y" }, // two sources
	}
	for i, mutate := range cases {
		req := good
		synth := *good.Synthetic
		req.Synthetic = &synth
		mutate(&req)
		if err := req.validate(); err == nil {
			t.Errorf("case %d: invalid request accepted: %+v", i, req)
		}
	}
}

// TestCacheServesIdenticalSchedule pins hit/miss equivalence directly:
// the second identical request is a hit and returns the same envelope
// transmissions.
func TestCacheServesIdenticalSchedule(t *testing.T) {
	srv := newServer(defaultConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	in := instance{alg: "eedcb", model: "static", n: 10, seed: 9, src: 0}
	code1, sr1, err := postSolve(ts.Client(), ts.URL, solveBody(in, nil))
	if err != nil || code1 != http.StatusOK {
		t.Fatalf("cold solve: code=%d err=%v", code1, err)
	}
	code2, sr2, err := postSolve(ts.Client(), ts.URL, solveBody(in, nil))
	if err != nil || code2 != http.StatusOK {
		t.Fatalf("warm solve: code=%d err=%v", code2, err)
	}
	if sr1.Cache != "miss" || sr2.Cache != "hit" {
		t.Fatalf("cache fields = %q, %q; want miss, hit", sr1.Cache, sr2.Cache)
	}
	a := scheduleBytes(t, decodeSchedule(t, sr1))
	b := scheduleBytes(t, decodeSchedule(t, sr2))
	if !bytes.Equal(a, b) {
		t.Fatal("cache hit returned a different schedule than the cold solve")
	}
}

// TestLadderSolvesDoNotPoisonCache pins the cache-fill contract: a
// budgeted solve whose request-supplied ladder pins it to the rung of
// last resort wins its first rung cleanly, yet must not be cached —
// the ladder is not part of the cache key, so caching it would hand a
// rand schedule to later full-quality requests for the same key.
func TestLadderSolvesDoNotPoisonCache(t *testing.T) {
	srv := newServer(defaultConfig())
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	in := instance{alg: "fr-eedcb", model: "rayleigh", n: 10, seed: 11, src: 0}
	code, sr, err := postSolve(ts.Client(), ts.URL, solveBody(in, func(q *solveRequest) {
		q.DeadlineMS = 60_000
		q.Ladder = "rand"
	}))
	if err != nil || code != http.StatusOK {
		t.Fatalf("ladder solve: code=%d err=%v", code, err)
	}
	if sr.Rung != "rand" {
		t.Fatalf("ladder solve answered at rung %q, want rand", sr.Rung)
	}
	// The same key without the ladder must be a miss and answer the
	// full-quality schedule, byte-identical to a direct facade solve.
	code, sr, err = postSolve(ts.Client(), ts.URL, solveBody(in, nil))
	if err != nil || code != http.StatusOK {
		t.Fatalf("plain solve: code=%d err=%v", code, err)
	}
	if sr.Cache != "miss" {
		t.Errorf("plain solve after ladder solve was a %q, want miss (cache poisoned)", sr.Cache)
	}
	got := scheduleBytes(t, decodeSchedule(t, sr))
	if want := scheduleBytes(t, expected(t, in)); !bytes.Equal(got, want) {
		t.Errorf("plain solve after ladder solve differs from facade:\n got %s\nwant %s", got, want)
	}
}

// TestAdmitFreeSlotNeverSheds pins the admission fast path: arrivals
// that find a free solve slot admit unshed no matter how many other
// requests are mid-admission, even when maxQueue is small relative to
// maxConcurrent (the old admit counted simultaneous arrivals on an idle
// daemon as queue depth and could shed or 503 with slots free).
func TestAdmitFreeSlotNeverSheds(t *testing.T) {
	cfg := defaultConfig()
	cfg.maxConcurrent = 2
	cfg.maxQueue = 1
	srv := newServer(cfg)

	// Simulate the worst interleaving: the waiting counter already holds
	// more in-flight arrivals than the queue admits.
	srv.waiting.Add(int64(cfg.maxQueue + 3))
	rel1, shed, err := srv.admit(context.Background())
	if err != nil || shed != 0 {
		t.Fatalf("admit on idle daemon: shed=%d err=%v", shed, err)
	}
	rel2, shed, err := srv.admit(context.Background())
	if err != nil || shed != 0 {
		t.Fatalf("admit with one slot left: shed=%d err=%v", shed, err)
	}
	srv.waiting.Add(-int64(cfg.maxQueue + 3))

	// Slots exhausted: admission queues again and the caller's context
	// is the only way out.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := srv.admit(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("admit with no free slot and dead ctx: %v, want context.Canceled", err)
	}
	rel1()
	rel2()
}

// TestShedRungsCountsDroppedRungs pins the shed_rungs semantics: the
// value is the number of rungs the shed level actually removed from the
// planner-bounded ladder, not the absolute shed level.
func TestShedRungsCountsDroppedRungs(t *testing.T) {
	srv := newServer(defaultConfig())
	tr := tmedb.GenerateTrace(tmedb.TraceOptions{N: 10}, 1)
	shed := int(tmedb.RungGreed)

	// A greed request already starts at the greed rung: shedding to
	// greed removes nothing and must report zero.
	req := solveRequest{Alg: "greed", Src: 0, T0: soakT0, Delay: soakDelay}
	_, outcome, dropped, _, err := srv.solve(context.Background(), &req, tr, shed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Errorf("greed request shed to greed reports %d dropped rungs, want 0", dropped)
	}
	if outcome == nil || outcome.Rung != tmedb.RungGreed {
		t.Fatalf("greed request shed to greed answered outcome %+v, want greed rung", outcome)
	}

	// The default planner's 4-rung ladder loses full and spt.
	req = solveRequest{Src: 0, T0: soakT0, Delay: soakDelay}
	_, outcome, dropped, _, err = srv.solve(context.Background(), &req, tr, shed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Errorf("fr-eedcb request shed to greed reports %d dropped rungs, want 2", dropped)
	}
	if outcome == nil || outcome.Rung != tmedb.RungGreed {
		t.Fatalf("fr-eedcb request shed to greed answered outcome %+v, want greed rung", outcome)
	}
}
