// Command tmedbd is the TMEDB solve daemon: a long-running multi-tenant
// HTTP service planning delay-constrained broadcasts on contact traces.
// It is the serving surface over the whole solver stack — per-request
// deadlines ride the context-cancellation checkpoints, overload lowers
// degradation-ladder rungs instead of returning errors, full-quality
// schedules are cached by content-addressed key, and both per-request
// run reports and process-wide fleet metrics come from the obs layer.
//
// Usage:
//
//	tmedbd [-addr localhost:8723] [-debug localhost:6060] [-traces dir]
//	       [-workers 1] [-max-concurrent 4] [-max-queue 16] [-cache 256]
//	       [-log json|text] [-flight 256]
//
// API:
//
//	POST /solve           JSON solve request -> schedule envelope + meta
//	                      (?trace=1 answers the catapult trace instead)
//	GET  /healthz         liveness + queue depth
//	GET  /metrics         Prometheus text exposition of the fleet metrics
//	GET  /debug/requests  flight recorder: the last N completed requests
//
// With -log, every request gets a process-unique req_id shared by its
// structured log events (admission, shedding, cache, degradation rungs,
// errors), its flight-recorder entry, and its response. With -debug,
// net/http/pprof, the expvar fleet metrics (expvar name "tmedbd" on
// /debug/vars), and /metrics are served on the debug address too.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, os.Stderr); err != nil {
		fatal(err)
	}
}

func parseFlags(args []string) (config, error) {
	cfg := defaultConfig()
	fs := flag.NewFlagSet("tmedbd", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", cfg.addr, "solve API listen address")
	fs.StringVar(&cfg.debugAddr, "debug", "", "serve net/http/pprof and expvar fleet metrics on this address (empty: disabled)")
	fs.StringVar(&cfg.traceDir, "traces", "", "root directory for trace_file references (empty: inline/synthetic traces only)")
	fs.IntVar(&cfg.workers, "workers", cfg.workers, "per-solve worker pool cap (0: GOMAXPROCS)")
	fs.IntVar(&cfg.maxConcurrent, "max-concurrent", cfg.maxConcurrent, "solves running at once")
	fs.IntVar(&cfg.maxQueue, "max-queue", cfg.maxQueue, "requests waiting for a slot before 503; a deepening queue sheds ladder rungs first")
	fs.IntVar(&cfg.cacheSize, "cache", cfg.cacheSize, "schedule cache capacity (entries)")
	fs.StringVar(&cfg.logFormat, "log", "", "request-scoped structured logging to stderr: json or text (empty: disabled)")
	fs.IntVar(&cfg.flightSize, "flight", 0, "flight recorder capacity in requests (0: default 256)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	switch cfg.logFormat {
	case "", "json", "text":
	default:
		return cfg, fmt.Errorf("-log must be json or text (got %q)", cfg.logFormat)
	}
	if cfg.flightSize < 0 {
		return cfg, fmt.Errorf("-flight must be >= 0 (got %d)", cfg.flightSize)
	}
	if cfg.workers < 0 {
		return cfg, fmt.Errorf("-workers must be >= 0 (got %d)", cfg.workers)
	}
	if cfg.maxConcurrent <= 0 {
		return cfg, fmt.Errorf("-max-concurrent must be positive (got %d)", cfg.maxConcurrent)
	}
	if cfg.maxQueue <= 0 {
		return cfg, fmt.Errorf("-max-queue must be positive (got %d)", cfg.maxQueue)
	}
	if cfg.cacheSize <= 0 {
		return cfg, fmt.Errorf("-cache must be positive (got %d)", cfg.cacheSize)
	}
	return cfg, nil
}

// shutdownGrace bounds how long a terminating daemon waits for in-flight
// solves before cutting them off (their contexts are cancelled first, so
// the cancellation checkpoints unwind them promptly).
const shutdownGrace = 10 * time.Second

// run serves the API until ctx is cancelled, then drains gracefully. It
// is the whole daemon behind a seam tests can call repeatedly in one
// process — which is exactly what flushed out the once-per-process
// PublishExpvar panic.
func run(ctx context.Context, cfg config, logw io.Writer) error {
	srv := newServer(cfg)
	switch cfg.logFormat {
	case "json":
		srv.log = tmedb.NewJSONLogger(logw)
	case "text":
		srv.log = tmedb.NewTextLogger(logw)
	}
	if err := srv.proc.PublishExpvar("tmedbd"); err != nil {
		return err
	}

	if cfg.debugAddr != "" {
		dbg, err := tmedb.ServeDebug(ctx, cfg.debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Fprintf(logw, "tmedbd: pprof/expvar on http://%s/debug/pprof\n", dbg.Addr())
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler: srv.handler(),
		// Per-request contexts descend from ctx, so daemon shutdown
		// cancels every in-flight solve through the checkpoint seam.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	fmt.Fprintf(logw, "tmedbd: serving on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(logw, "tmedbd: draining\n")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tmedbd:", err)
	os.Exit(1)
}
