// Command journeys answers temporal-path queries on a contact trace:
// the foremost (earliest-arrival), shortest (fewest-hop), and fastest
// (minimum-duration) journeys between two nodes, plus the temporal
// reachability count — the TVG toolbox of Bui-Xuan et al. and
// Whitbeck et al. the paper builds on.
//
// Usage:
//
//	journeys -src 0 -dst 7 [-t0 0] [-trace t.txt | -seed 1 -n 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (empty: synthesize)")
		n         = flag.Int("n", 20, "nodes for the synthetic trace")
		seed      = flag.Int64("seed", 1, "synthetic trace seed")
		src       = flag.Int("src", 0, "journey source")
		dst       = flag.Int("dst", 1, "journey destination")
		t0        = flag.Float64("t0", 0, "earliest departure time")
	)
	flag.Parse()

	var trace *tmedb.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			fatal(err)
		}
		var rerr error
		trace, rerr = tmedb.ReadTrace(f)
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
	} else {
		trace = tmedb.GenerateTrace(tmedb.TraceOptions{N: *n}, *seed)
	}
	g := trace.ToTVEG(0, tmedb.DefaultParams(), tmedb.Static)
	if *src < 0 || *src >= g.N() || *dst < 0 || *dst >= g.N() {
		fatal(fmt.Errorf("nodes must be in [0,%d)", g.N()))
	}
	s, d := tmedb.NodeID(*src), tmedb.NodeID(*dst)

	fmt.Printf("journeys %d → %d departing at or after t=%.0f (horizon %.0f s):\n\n",
		*src, *dst, *t0, trace.Horizon)
	describe := func(name string, j tmedb.Journey) {
		if j == nil {
			fmt.Printf("%-9s unreachable\n", name)
			return
		}
		fmt.Printf("%-9s %d hop(s), departs %.1f, arrives %.1f (duration %.1f)\n",
			name, len(j), j.Departure(), j.Arrival(g.Graph), j.Arrival(g.Graph)-j.Departure())
		for _, h := range j {
			fmt.Printf("          %d → %d at t=%.1f\n", h.From, h.To, h.T)
		}
	}
	describe("foremost", tmedb.Foremost(g, s, d, *t0))
	describe("shortest", tmedb.Shortest(g, s, d, *t0))
	describe("fastest", tmedb.Fastest(g, s, d, *t0, trace.Horizon))

	m := tmedb.Reachable(g, *t0, trace.Horizon)
	count := 0
	for j, ok := range m[s] {
		if ok && tmedb.NodeID(j) != s {
			count++
		}
	}
	fmt.Printf("\nnode %d can reach %d/%d other nodes within the window\n",
		*src, count, g.N()-1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "journeys:", err)
	os.Exit(1)
}
