package tmedb_test

import (
	"fmt"
	"math"

	tmedb "repro"
)

// The quickstart of the README: plan a broadcast on a hand-built TVEG.
func ExampleEEDCB() {
	g := tmedb.NewGraph(3, tmedb.Interval{Start: 0, End: 100}, 0,
		tmedb.DefaultParams(), tmedb.Static)
	g.AddContact(0, 1, tmedb.Interval{Start: 10, End: 30}, 5)
	g.AddContact(1, 2, tmedb.Interval{Start: 20, End: 50}, 8)

	sched, err := (tmedb.EEDCB{}).Schedule(g, 0, 0, 100)
	if err != nil {
		panic(err)
	}
	for _, tx := range sched {
		fmt.Printf("node %d transmits at t=%g\n", tx.Relay, tx.T)
	}
	fmt.Println("feasible:", tmedb.CheckFeasible(g, sched, 0, 100, math.Inf(1)) == nil)
	// Output:
	// node 0 transmits at t=10
	// node 1 transmits at t=20
	// feasible: true
}

// Fading-resistant planning satisfies the ε target per node; evaluation
// is Monte Carlo and deterministic per seed.
func ExampleFREEDCB() {
	g := tmedb.NewGraph(2, tmedb.Interval{Start: 0, End: 100}, 0,
		tmedb.DefaultParams(), tmedb.Rayleigh)
	g.AddContact(0, 1, tmedb.Interval{Start: 10, End: 30}, 5)

	sched, err := (tmedb.FREEDCB{}).Schedule(g, 0, 0, 100)
	if err != nil {
		panic(err)
	}
	p := tmedb.UninformedProb(g, sched, 0, 1, 100)
	fmt.Printf("residual failure probability <= ε: %v\n", p <= g.Params.Eps*1.000001)
	// Output:
	// residual failure probability <= ε: true
}

// Temporal-graph queries come with the model: journeys and reachability.
func ExampleForemost() {
	g := tmedb.NewGraph(3, tmedb.Interval{Start: 0, End: 100}, 0,
		tmedb.DefaultParams(), tmedb.Static)
	g.AddContact(0, 1, tmedb.Interval{Start: 10, End: 30}, 5)
	g.AddContact(1, 2, tmedb.Interval{Start: 20, End: 50}, 8)

	j := tmedb.Foremost(g, 0, 2, 0)
	fmt.Printf("%d hops, arrives at t=%g\n", len(j), j.Arrival(g.Graph))
	// Output:
	// 2 hops, arrives at t=20
}

// The exact solver certifies heuristic quality on small instances.
func ExampleOptimalSchedule() {
	g := tmedb.NewGraph(3, tmedb.Interval{Start: 0, End: 100}, 0,
		tmedb.DefaultParams(), tmedb.Static)
	g.AddContact(0, 1, tmedb.Interval{Start: 10, End: 30}, 5)
	g.AddContact(1, 2, tmedb.Interval{Start: 20, End: 50}, 8)

	_, opt, err := tmedb.OptimalSchedule(g, 0, 0, 100)
	if err != nil {
		panic(err)
	}
	heur, err := (tmedb.EEDCB{}).Schedule(g, 0, 0, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("heuristic/optimal = %.2f\n", heur.TotalCost()/opt)
	// Output:
	// heuristic/optimal = 1.00
}
