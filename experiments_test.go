package tmedb

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

// smallConfig is a scaled-down experiment setting that keeps the harness
// tests fast while exercising every code path the full figures use.
func smallConfig() ExperimentConfig {
	cfg := DefaultConfig()
	cfg.Sources = []NodeID{0}
	cfg.Delays = []float64{2000, 4000}
	cfg.Ns = []int{10, 15}
	cfg.Trials = 60
	cfg.Fig7Times = []float64{6000, 10000, 14000}
	return cfg
}

func finite(ys []float64) []float64 {
	var out []float64
	for _, y := range ys {
		if !math.IsNaN(y) {
			out = append(out, y)
		}
	}
	return out
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if len(cfg.Delays) != 9 || cfg.Delays[0] != 2000 || cfg.Delays[8] != 6000 {
		t.Errorf("Delays = %v, want 2000..6000 step 500", cfg.Delays)
	}
	if cfg.Fig7Times[0] != 5000 || cfg.Fig7Times[len(cfg.Fig7Times)-1] != 15000 {
		t.Errorf("Fig7Times = %v", cfg.Fig7Times)
	}
	if cfg.Params.Eps != 0.01 {
		t.Errorf("Eps = %g, want 0.01", cfg.Params.Eps)
	}
}

func TestFig4StaticShape(t *testing.T) {
	cfg := smallConfig()
	res := Fig4(cfg, Static)
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want one per N", len(res.Series))
	}
	for _, s := range res.Series {
		ys := finite(s.Y)
		if len(ys) == 0 {
			t.Fatalf("series %s has no finite points", s.Label)
		}
		for _, y := range ys {
			if y <= 0 {
				t.Errorf("series %s has non-positive energy %g", s.Label, y)
			}
		}
	}
	// energy increases with N at each delay (Fig. 4 claim)
	for i := range res.Series[0].Y {
		small, big := res.Series[0].Y[i], res.Series[1].Y[i]
		if !math.IsNaN(small) && !math.IsNaN(big) && big < small*0.5 {
			t.Errorf("N=15 energy %g suspiciously below N=10 energy %g at delay %g",
				big, small, res.Series[0].X[i])
		}
	}
}

func TestFig4FadingRuns(t *testing.T) {
	cfg := smallConfig()
	res := Fig4(cfg, Rayleigh)
	if !strings.Contains(res.Title, "FR-EEDCB") {
		t.Errorf("fading Fig4 should use FR-EEDCB: %s", res.Title)
	}
	if len(finite(res.Series[0].Y)) == 0 {
		t.Error("no finite fading energies")
	}
}

func TestFig5Ordering(t *testing.T) {
	cfg := smallConfig()
	for _, model := range []Model{Static, Rayleigh} {
		res := Fig5(cfg, model)
		if len(res.Series) != 3 {
			t.Fatalf("series = %d, want 3 algorithms", len(res.Series))
		}
		// aggregate over delays: EEDCB <= RAND family ordering
		sum := func(s *Series) float64 {
			t := 0.0
			for _, y := range finite(s.Y) {
				t += y
			}
			return t
		}
		e, r := sum(res.Series[0]), sum(res.Series[2])
		if e <= 0 || r <= 0 {
			t.Fatalf("model %v: degenerate sums %g %g", model, e, r)
		}
		if e > r {
			t.Errorf("model %v: %s total %g exceeds %s total %g",
				model, res.Series[0].Label, e, res.Series[2].Label, r)
		}
	}
}

func TestFig6Shapes(t *testing.T) {
	cfg := smallConfig()
	energy, delivery := Fig6(cfg)
	if len(energy.Series) != 6 || len(delivery.Series) != 6 {
		t.Fatalf("want 6 algorithm series, got %d/%d", len(energy.Series), len(delivery.Series))
	}
	// FR variants deliver ≈ 1, non-FR clearly below (Fig. 6(b) claim)
	for i := 0; i < 3; i++ {
		nonFR := stats.Mean(finite(delivery.Series[i].Y))
		fr := stats.Mean(finite(delivery.Series[i+3].Y))
		if fr < 0.9 {
			t.Errorf("%s delivery %g, want ≥ 0.9", delivery.Series[i+3].Label, fr)
		}
		if nonFR > fr {
			t.Errorf("%s delivery %g exceeds FR %g", delivery.Series[i].Label, nonFR, fr)
		}
	}
	// FR energy above non-FR (Fig. 6(a) claim)
	for i := 0; i < 3; i++ {
		nonFR := stats.Mean(finite(energy.Series[i].Y))
		fr := stats.Mean(finite(energy.Series[i+3].Y))
		if fr <= nonFR {
			t.Errorf("FR energy %g not above non-FR %g for %s", fr, nonFR, energy.Series[i].Label)
		}
	}
}

func TestFig7ShapeAndDegree(t *testing.T) {
	cfg := smallConfig()
	res := Fig7(cfg, Static)
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 3 algorithms + degree", len(res.Series))
	}
	deg := res.Series[3]
	if deg.Label != "avg-degree" {
		t.Fatalf("last series = %s, want avg-degree", deg.Label)
	}
	for _, y := range deg.Y {
		if y < 0 || math.IsNaN(y) {
			t.Errorf("bad degree sample %g", y)
		}
	}
	// The degree ramp is a statistical property: compare long windows on
	// the experiment graph directly (per-window samples at N=15 are too
	// noisy for pointwise ordering).
	g := cfg.graphFor(defaultN(cfg), Static)
	early := g.AverageDegreeOver(500, 5000, 300)
	late := g.AverageDegreeOver(10000, 16000, 300)
	if early >= late {
		t.Errorf("degree ramp missing: early %g >= late %g", early, late)
	}
}

func TestFigureResultRenders(t *testing.T) {
	cfg := smallConfig()
	res := Fig5(cfg, Static)
	out := res.String()
	if !strings.Contains(out, "EEDCB") || !strings.Contains(out, "delay(s)") {
		t.Errorf("render = %q", out)
	}
}
