package tmedb

// Extensions beyond the paper's core pipeline: the exact small-instance
// solver, trace characterization, parallel evaluation, and the two §VIII
// future-work directions (non-deterministic TVGs, interference).

import (
	"io"
	"math/rand"

	"repro/internal/audit"
	"repro/internal/auxgraph"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/dts"
	"repro/internal/exact"
	"repro/internal/interference"
	"repro/internal/ndtvg"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/tracestats"
	"repro/internal/tveg"
)

// Observability: the solver-wide instrumentation layer of internal/obs.
// A nil *Recorder is the disabled default — every instrumented code path
// is a zero-allocation no-op without one, and schedules are byte-identical
// with or without recording (see DESIGN.md "Observability").
type (
	// Recorder collects counters, gauges, histograms, phase spans, and
	// worker-pool utilization for one run.
	Recorder = obs.Recorder
	// RunReport is a recorder snapshot: the stable-JSON run report.
	RunReport = obs.Report
	// ScheduleMeta is the optional provenance block of a schedule file.
	ScheduleMeta = schedule.Meta
)

// NewRecorder returns an enabled metrics recorder.
func NewRecorder() *Recorder { return obs.New() }

// CacheStats is a point-in-time view of a graph's cost-cache counters
// (MinCost and DCS memo tables plus the shared channel-inversion memo).
type CacheStats = tveg.CacheStats

// RecordCacheStats samples g's cost-cache counters into rec under the
// cache.tveg.min_cost / cache.tveg.dcs / cache.channel.memo gauge
// families (run reports derive a .hit_rate per family). No-op when rec
// is nil or the graph's cache is disabled.
func RecordCacheStats(rec *Recorder, g *Graph) {
	st, ok := g.CostCacheStats()
	if !ok || rec == nil {
		return
	}
	rec.RecordCache("tveg.min_cost", st.MinCostHits, st.MinCostMisses, st.MinCostSize)
	rec.RecordCache("tveg.dcs", st.DCSHits, st.DCSMisses, st.DCSSize)
	rec.RecordCache("channel.memo", st.EDMemo.Hits, st.EDMemo.Misses, st.EDMemo.Size)
}

// EvaluateObs is Evaluate with sim transmission/reception counters
// recorded into rec (nil records nothing; results are identical).
func EvaluateObs(g *Graph, s Schedule, src NodeID, trials int, seed int64, rec *Recorder) Result {
	return sim.EvaluateObs(g, s, src, trials, rand.New(rand.NewSource(seed)), rec)
}

// EvaluateParallelObs is EvaluateParallel with per-worker busy time
// recorded into rec's "sim.evaluate" pool (nil records nothing).
func EvaluateParallelObs(g *Graph, s Schedule, src NodeID, trials int, seed int64, workers int, rec *Recorder) Result {
	return sim.EvaluateParallelObs(g, s, src, trials, seed, workers, rec)
}

// WriteScheduleJSONMeta writes a schedule with an embedded provenance
// block (nil meta matches WriteScheduleJSON byte for byte).
func WriteScheduleJSONMeta(w io.Writer, s Schedule, meta *ScheduleMeta) error {
	return s.WriteJSONMeta(w, meta)
}

// ReadScheduleJSONMeta parses a schedule file along with its provenance
// block (nil for meta-less files).
func ReadScheduleJSONMeta(r io.Reader) (Schedule, *ScheduleMeta, error) {
	return schedule.ReadJSONMeta(r)
}

// EvaluateParallel is Evaluate across a deterministic worker pool:
// results depend only on (seed, workers), not on scheduling. workers <= 0
// selects GOMAXPROCS.
func EvaluateParallel(g *Graph, s Schedule, src NodeID, trials int, seed int64, workers int) Result {
	return sim.EvaluateParallel(g, s, src, trials, seed, workers)
}

// OptimalSchedule solves a small TMEDB-S instance (static channel,
// τ = 0, N <= 16) exactly by search over (time, informed-set) states,
// returning the minimum-cost feasible schedule and its cost. Use it to
// validate heuristics; it is exponential in N.
func OptimalSchedule(g *Graph, src NodeID, t0, deadline float64) (Schedule, float64, error) {
	return exact.Solve(g, src, t0, deadline)
}

// TraceReport summarizes a contact trace: duration and inter-contact
// statistics, a power-law tail fit, and a degree timeline.
type TraceReport = tracestats.Report

// AnalyzeTrace computes a TraceReport (degreeSamples <= 0 defaults
// to 32).
func AnalyzeTrace(t *Trace, degreeSamples int) TraceReport {
	return tracestats.Analyze(t, degreeSamples)
}

// --- Non-deterministic TVGs (§VIII future work) --------------------------

// NDGraph is a non-deterministic TVEG: every contact carries a
// materialization probability (the general ρ: E×T → [0,1] presence
// function of the TVG framework).
type NDGraph = ndtvg.Graph

// RobustResult aggregates a schedule's delivery across sampled
// realizations of a non-deterministic graph.
type RobustResult = ndtvg.RobustResult

// NewNDGraph creates an empty non-deterministic graph.
func NewNDGraph(n int, span Interval, tau float64, params Params, model Model) *NDGraph {
	return ndtvg.New(n, span, tau, params, model)
}

// NDFromTrace lifts a trace into a non-deterministic graph with
// per-contact probabilities drawn uniformly from [pmin, pmax].
func NDFromTrace(t *Trace, tau float64, params Params, model Model, pmin, pmax float64, seed int64) *NDGraph {
	return ndtvg.FromTrace(t, tau, params, model, pmin, pmax, rand.New(rand.NewSource(seed)))
}

// PlanRobust plans on the contacts with probability >= threshold and
// evaluates the schedule across sampled realizations.
func PlanRobust(g *NDGraph, planner Scheduler, src NodeID, t0, deadline, threshold float64, realizations, trialsPer int, seed int64) (Schedule, RobustResult, error) {
	return ndtvg.PlanRobust(g, planner, src, t0, deadline, threshold, realizations, trialsPer, seed)
}

// EvaluateRobust executes an existing schedule across realizations.
func EvaluateRobust(g *NDGraph, s Schedule, src NodeID, realizations, trialsPer int, seed int64) RobustResult {
	return ndtvg.EvaluateRobust(g, s, src, realizations, trialsPer, seed)
}

// --- Interference (§VIII future work) ------------------------------------

// Conflict names two schedule entries that can collide at a receiver
// under the protocol interference model.
type Conflict = interference.Conflict

// DetectConflicts finds transmission pairs with overlapping airtime and
// a shared in-range receiver. slot is one packet's airtime (used when
// τ = 0).
func DetectConflicts(g *Graph, s Schedule, slot float64) []Conflict {
	return interference.Detect(g, s, slot)
}

// SerializeSchedule delays colliding transmissions apart within their
// ET-law equivalence intervals so the schedule is collision-free.
func SerializeSchedule(g *Graph, s Schedule, slot float64) (Schedule, error) {
	return interference.Serialize(g, s, slot)
}

// EvaluateWithInterference measures delivery under collision semantics:
// a receiver hearing two or more simultaneous transmitters decodes
// nothing.
func EvaluateWithInterference(g *Graph, s Schedule, src NodeID, slot float64, trials int, seed int64) float64 {
	return interference.Evaluate(g, s, src, slot, trials, rand.New(rand.NewSource(seed)))
}

// WriteScheduleJSON writes a schedule in the stable versioned JSON
// format; ReadScheduleJSON parses it back.
func WriteScheduleJSON(w io.Writer, s Schedule) error { return s.WriteJSON(w) }

// ReadScheduleJSON parses a schedule written by WriteScheduleJSON.
func ReadScheduleJSON(r io.Reader) (Schedule, error) { return schedule.ReadJSON(r) }

// LowerBound returns a certified lower bound on the optimal TMEDB cost:
// the auxiliary-graph shortest-path cost to the hardest node. Any
// feasible schedule costs at least this much, so
// heuristicCost / LowerBound certifies a per-instance approximation gap.
func LowerBound(g *Graph, src NodeID, t0, deadline float64) (bound float64, unreachable []NodeID, err error) {
	return core.LowerBound(g, src, t0, deadline, dts.Options{}, auxgraph.Options{})
}

// --- Temporal-graph queries ----------------------------------------------

// Foremost returns the earliest-arrival journey src→dst departing at or
// after t0 (nil when unreachable). Shortest and Fastest follow
// Bui-Xuan et al.'s taxonomy.
func Foremost(g *Graph, src, dst NodeID, t0 float64) Journey {
	return g.ForemostJourney(src, dst, t0)
}

// Shortest returns a minimum-hop journey src→dst departing at or after
// t0.
func Shortest(g *Graph, src, dst NodeID, t0 float64) Journey {
	return g.ShortestJourney(src, dst, t0)
}

// Fastest returns a minimum-duration journey src→dst within [t0, tEnd].
func Fastest(g *Graph, src, dst NodeID, t0, tEnd float64) Journey {
	return g.FastestJourney(src, dst, t0, tEnd)
}

// Reachable returns the temporal reachability matrix for [t1, t2]:
// m[i][j] reports whether a journey i→j fits in the window.
func Reachable(g *Graph, t1, t2 float64) [][]bool {
	return g.ReachabilityMatrix(t1, t2)
}

// --- Discrete-event execution ---------------------------------------------

// ExecOptions tunes the airtime-accurate discrete-event executor.
type ExecOptions = des.ExecOptions

// ExecResult reports one discrete-event realization: per-node reception
// timestamps, consumed energy, and collision counts.
type ExecResult = des.ExecResult

// ExecuteDES runs the schedule once through the discrete-event executor:
// transmissions occupy the channel for a real airtime, relays cannot
// decode and forward within one airtime, and (optionally) concurrent
// transmitters collide at shared receivers. Deterministic per seed.
func ExecuteDES(g *Graph, s Schedule, src NodeID, start float64, opts ExecOptions, seed int64) (ExecResult, error) {
	return des.Execute(g, s, src, start, opts, rand.New(rand.NewSource(seed)))
}

// --- Differential schedule audit ------------------------------------------

// AuditReport summarizes a differential schedule-audit run: randomized
// (graph, schedule, τ) cases executed through every execution semantics
// in the repo, with one Mismatch (including the reference executor's
// event trace) per disagreement.
type AuditReport = audit.Report

// AuditMismatch is one failed audit case.
type AuditMismatch = audit.Mismatch

// AuditTrace is the reference executor's result: per-node reception
// times, fired transmissions, consumed energy, and an ordered
// Tx/Recv/Drop event trace with causes.
type AuditTrace = audit.Trace

// RunAudit generates `cases` seeded differential cases (static and
// Rayleigh channels, τ ∈ {0, small, large}, random and planner-produced
// schedules) and cross-checks sim.Evaluate, sim.InformedTimes,
// CheckFeasible, the discrete-event executor, and an independent
// feasibility recoding against the reference executor. Deterministic
// per seed.
func RunAudit(cases int, seed int64) AuditReport {
	return audit.RunDifferential(cases, seed)
}

// AuditSchedule cross-checks one concrete schedule through every
// execution semantics and returns one line per disagreement (nil when
// all agree).
func AuditSchedule(g *Graph, s Schedule, src NodeID, t0, deadline, costBound float64) []string {
	return audit.CompareSchedule(g, s, src, t0, deadline, costBound)
}

// ReferenceExecute runs the latency-aware reference executor once. With
// events on, the trace records every transmission, reception (stamped
// at arrival t+τ), and drop with its cause.
func ReferenceExecute(g *Graph, s Schedule, src NodeID, t0 float64, events bool) *AuditTrace {
	return audit.Execute(g, s, src, audit.Options{T0: t0, Events: events})
}
