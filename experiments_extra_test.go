package tmedb

import (
	"math"
	"strings"
	"testing"
)

func TestComplexityTableGrowsWithN(t *testing.T) {
	cfg := smallConfig()
	cfg.Ns = []int{8, 16, 24}
	res := ComplexityTable(cfg)
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(res.Series))
	}
	for _, s := range res.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Errorf("%s not monotone in N: %v", s.Label, s.Y)
			}
		}
	}
	// pruning must help: pruned <= full at every N
	pruned, full := res.Series[0], res.Series[1]
	for i := range pruned.Y {
		if pruned.Y[i] > full.Y[i] {
			t.Errorf("pruned DTS %g exceeds full %g at N=%g", pruned.Y[i], full.Y[i], pruned.X[i])
		}
	}
	if !strings.Contains(res.String(), "aux-vertices") {
		t.Error("table missing aux-vertices column")
	}
}

func TestGapTableCertifiesSmallGaps(t *testing.T) {
	cfg := smallConfig()
	cfg.Ns = []int{10, 15}
	res := GapTable(cfg)
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(res.Series))
	}
	ratio := res.Series[2]
	for i, r := range ratio.Y {
		if math.IsNaN(r) {
			continue
		}
		if r < 1-1e-9 {
			t.Errorf("gap %g < 1 at N=%g — bound above heuristic cost", r, ratio.X[i])
		}
		if r > 20 {
			t.Errorf("gap %g at N=%g implausibly large", r, ratio.X[i])
		}
	}
}

func TestRunParallelCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 8} {
		hits := make([]int, 100)
		runParallel(workers, len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
	// n smaller than worker count
	small := make([]int, 2)
	runParallel(8, 2, func(i int) { small[i]++ })
	if small[0] != 1 || small[1] != 1 {
		t.Errorf("small run = %v", small)
	}
	// n == 0 must not hang
	runParallel(8, 0, func(int) { t.Error("should not run") })
}
