package tmedb

import (
	"math"
	"testing"
)

func TestOptimalScheduleFacade(t *testing.T) {
	g := testGraph(Static)
	s, cost, err := OptimalSchedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Params.NoiseGamma() * (25 + 64)
	if math.Abs(cost-want)/want > 1e-9 {
		t.Errorf("optimal cost = %g, want %g", cost, want)
	}
	// EEDCB on the same instance can't beat it
	h, err := (EEDCB{}).Schedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalCost() < cost*(1-1e-9) {
		t.Errorf("heuristic %g below optimum %g", h.TotalCost(), cost)
	}
	if len(s) == 0 {
		t.Error("empty optimal schedule")
	}
}

func TestEvaluateParallelFacade(t *testing.T) {
	g := testGraph(Rayleigh)
	s, err := (FREEDCB{}).Schedule(g, 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := EvaluateParallel(g, s, 0, 2000, 7, 4)
	if r.Trials != 2000 || r.MeanDelivery < 0.95 {
		t.Errorf("parallel result = %v", r)
	}
}

func TestAnalyzeTraceFacade(t *testing.T) {
	tr := GenerateTrace(TraceOptions{N: 8, Horizon: 5000}, 3)
	rep := AnalyzeTrace(tr, 8)
	if rep.N != 8 || rep.NumContacts != len(tr.Contacts) {
		t.Errorf("report = %+v", rep)
	}
}

func TestRobustPipelineFacade(t *testing.T) {
	nd := NewNDGraph(3, Interval{Start: 0, End: 100}, 0, DefaultParams(), Static)
	nd.AddContact(0, 1, Interval{Start: 10, End: 30}, 5, 1.0)
	nd.AddContact(1, 2, Interval{Start: 40, End: 60}, 5, 0.5)
	s, res, err := PlanRobust(nd, EEDCB{}, 0, 0, 100, 0.0, 200, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Fatalf("schedule %v, want 2 hops", s)
	}
	// node 2 delivered only when the p=0.5 contact materializes:
	// expected delivery ≈ (2 + 0.5)/3
	want := 2.5 / 3
	if math.Abs(res.MeanDelivery-want) > 0.05 {
		t.Errorf("robust delivery = %g, want ≈ %g", res.MeanDelivery, want)
	}
	// re-evaluate the same schedule directly
	res2 := EvaluateRobust(nd, s, 0, 200, 1, 9)
	if res2.MeanDelivery != res.MeanDelivery {
		t.Errorf("EvaluateRobust mismatch: %g vs %g", res2.MeanDelivery, res.MeanDelivery)
	}
}

func TestNDFromTraceFacade(t *testing.T) {
	tr := GenerateTrace(TraceOptions{N: 6, Horizon: 3000}, 2)
	nd := NDFromTrace(tr, 0, DefaultParams(), Static, 0.4, 0.8, 5)
	if len(nd.Contacts) != len(tr.Contacts) {
		t.Errorf("contacts = %d, want %d", len(nd.Contacts), len(tr.Contacts))
	}
}

func TestInterferenceFacade(t *testing.T) {
	g := NewGraph(4, Interval{Start: 0, End: 100}, 0, DefaultParams(), Static)
	g.AddContact(0, 1, Interval{Start: 0, End: 5}, 5)
	g.AddContact(0, 2, Interval{Start: 8, End: 100}, 5)
	g.AddContact(1, 2, Interval{Start: 8, End: 100}, 5)
	g.AddContact(0, 3, Interval{Start: 8, End: 100}, 5)
	w := g.Params.NoiseGamma() * 25
	s := Schedule{
		{Relay: 0, T: 2, W: w},
		{Relay: 0, T: 10, W: w},
		{Relay: 1, T: 10, W: w},
	}
	if c := DetectConflicts(g, s, 1); len(c) == 0 {
		t.Fatal("hidden terminal not detected")
	}
	before := EvaluateWithInterference(g, s, 0, 1, 100, 1)
	fixed, err := SerializeSchedule(g, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	after := EvaluateWithInterference(g, fixed, 0, 1, 100, 1)
	if after <= before {
		t.Errorf("serialization should improve delivery: %g → %g", before, after)
	}
	if after != 1 {
		t.Errorf("serialized delivery = %g, want 1", after)
	}
}

func TestJourneyFacades(t *testing.T) {
	g := testGraph(Static) // chain 0-1 [10,30), 1-2 [20,50)
	fm := Foremost(g, 0, 2, 0)
	if fm == nil || fm.Arrival(g.Graph) != 20 {
		t.Errorf("foremost = %v", fm)
	}
	sh := Shortest(g, 0, 2, 0)
	if sh == nil || len(sh) != 2 {
		t.Errorf("shortest = %v", sh)
	}
	fa := Fastest(g, 0, 2, 0, 100)
	if fa == nil {
		t.Fatal("fastest nil")
	}
	if dur := fa.Arrival(g.Graph) - fa.Departure(); dur != 0 {
		// τ=0 non-stop chain at t=20: duration 0
		t.Errorf("fastest duration = %g, want 0", dur)
	}
	m := Reachable(g, 0, 100)
	if !m[0][2] || !m[2][0] {
		t.Errorf("reachability matrix wrong: %v", m)
	}
}

func TestMulticastFacade(t *testing.T) {
	g := testGraph(Static)
	s, err := (EEDCB{}).Multicast(g, 0, []NodeID{1}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Params.NoiseGamma() * 25
	if math.Abs(s.TotalCost()-want)/want > 1e-9 {
		t.Errorf("multicast cost = %g, want single hop %g", s.TotalCost(), want)
	}
}
